//! Schedulers that drive checked executions.
//!
//! The paper uses two stateless model checkers with complementary
//! trade-offs (§6): Loom soundly explores all interleavings of small
//! harnesses, while Shuttle randomly explores interleavings of large ones,
//! implementing probabilistic concurrency testing (PCT). This module
//! provides both ends of that spectrum:
//!
//! - [`RandomScheduler`] — uniform random walk over runnable tasks.
//! - [`PctScheduler`] — PCT (Burckhardt et al., ASPLOS 2010): random task
//!   priorities with `d - 1` random priority-change points, giving a
//!   probabilistic guarantee of hitting any bug of depth `d`.
//! - [`RoundRobinScheduler`] — deterministic baseline.
//! - [`DfsScheduler`] — bounded depth-first systematic enumeration of all
//!   schedules (exhaustive for small harnesses, like Loom's role in the
//!   paper).
//! - [`ReplayScheduler`] — replays a recorded failing schedule exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::execution::TaskId;

/// A scheduling strategy for checked executions.
///
/// The engine calls [`Scheduler::next_task`] at every scheduling point with
/// the set of runnable tasks (sorted by id, never empty).
pub trait Scheduler: Send {
    /// Called before each execution (iteration) starts.
    fn new_execution(&mut self);

    /// Picks the next task to run.
    fn next_task(&mut self, runnable: &[TaskId], current: Option<TaskId>) -> TaskId;

    /// Notifies the scheduler that a new task was spawned.
    fn on_spawn(&mut self, _task: TaskId) {}

    /// Notifies the scheduler that a task explicitly yielded (e.g. inside
    /// a spin loop). Priority-based schedulers demote the yielder so
    /// spinners cannot starve the tasks they are waiting on — without
    /// this, PCT livelocks on any spin-wait.
    fn on_yield(&mut self, _task: TaskId) {}

    /// Called after an execution completes; returns false when the search
    /// space is exhausted and no further iterations are useful.
    fn prepare_next(&mut self) -> bool {
        true
    }
}

/// Declarative scheduler configuration (see [`crate::CheckOptions`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Uniform random walk with the given seed.
    Random {
        /// RNG seed; fixing it makes the whole run reproducible.
        seed: u64,
    },
    /// Probabilistic concurrency testing with the given seed and bug depth.
    Pct {
        /// RNG seed.
        seed: u64,
        /// Bug depth `d`: the number of ordering constraints the scheduler
        /// can satisfy; `d - 1` priority change points are inserted.
        depth: usize,
    },
    /// Deterministic round-robin (a weak baseline, useful in benches).
    RoundRobin,
    /// Bounded depth-first systematic enumeration of all schedules.
    Dfs,
}

impl SchedulerKind {
    /// Instantiates the scheduler.
    pub fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::Random { seed } => Box::new(RandomScheduler::new(*seed)),
            SchedulerKind::Pct { seed, depth } => Box::new(PctScheduler::new(*seed, *depth)),
            SchedulerKind::RoundRobin => Box::new(RoundRobinScheduler::default()),
            SchedulerKind::Dfs => Box::new(DfsScheduler::default()),
        }
    }
}

/// Uniform random choice among runnable tasks.
#[derive(Debug)]
pub struct RandomScheduler {
    rng: StdRng,
}

impl RandomScheduler {
    /// Creates a random scheduler from a seed.
    pub fn new(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }
}

impl Scheduler for RandomScheduler {
    fn new_execution(&mut self) {}

    fn next_task(&mut self, runnable: &[TaskId], _current: Option<TaskId>) -> TaskId {
        runnable[self.rng.gen_range(0..runnable.len())]
    }
}

/// Probabilistic concurrency testing (PCT).
///
/// Each task gets a distinct random priority at spawn. The highest-priority
/// runnable task always runs, except at `d - 1` pre-sampled step indices
/// where the currently highest-priority runnable task is demoted below all
/// others. With `n` steps, `k` tasks, and bug depth `d`, PCT finds the bug
/// with probability at least `1/(k * n^(d-1))` per execution.
#[derive(Debug)]
pub struct PctScheduler {
    rng: StdRng,
    depth: usize,
    /// Expected maximum schedule length, used to sample change points.
    expected_steps: usize,
    priorities: Vec<u64>,
    change_points: Vec<usize>,
    step: usize,
    next_low: u64,
}

impl PctScheduler {
    /// Creates a PCT scheduler with the given seed and bug depth.
    pub fn new(seed: u64, depth: usize) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            depth: depth.max(1),
            expected_steps: 1000,
            priorities: Vec::new(),
            change_points: Vec::new(),
            step: 0,
            next_low: 0,
        }
    }

    /// Overrides the expected schedule length used to sample change points.
    pub fn with_expected_steps(mut self, steps: usize) -> Self {
        self.expected_steps = steps.max(1);
        self
    }
}

impl Scheduler for PctScheduler {
    fn new_execution(&mut self) {
        self.priorities.clear();
        self.step = 0;
        // Low priorities decrease from just below the initial random band,
        // so every demotion goes strictly below all current priorities.
        self.next_low = u64::MAX / 4;
        self.change_points = (0..self.depth.saturating_sub(1))
            .map(|_| self.rng.gen_range(0..self.expected_steps))
            .collect();
        self.change_points.sort_unstable();
    }

    fn next_task(&mut self, runnable: &[TaskId], _current: Option<TaskId>) -> TaskId {
        self.step += 1;
        let highest = *runnable
            .iter()
            .max_by_key(|t| self.priorities.get(t.0).copied().unwrap_or(0))
            .expect("runnable non-empty");
        if self.change_points.binary_search(&(self.step - 1)).is_ok() {
            // Demote the winner below everyone and re-select.
            if let Some(p) = self.priorities.get_mut(highest.0) {
                self.next_low = self.next_low.saturating_sub(1);
                *p = self.next_low;
            }
            return *runnable
                .iter()
                .max_by_key(|t| self.priorities.get(t.0).copied().unwrap_or(0))
                .expect("runnable non-empty");
        }
        highest
    }

    fn on_spawn(&mut self, task: TaskId) {
        while self.priorities.len() <= task.0 {
            // Initial priorities live in the upper band, above any demoted
            // priority.
            let p = self.rng.gen_range(u64::MAX / 2..u64::MAX);
            self.priorities.push(p);
        }
    }

    fn on_yield(&mut self, task: TaskId) {
        // An explicit yield parks the task below everyone else (Shuttle's
        // treatment of `yield_now` under PCT).
        if let Some(p) = self.priorities.get_mut(task.0) {
            self.next_low = self.next_low.saturating_sub(1);
            *p = self.next_low;
        }
    }
}

/// Deterministic round-robin over runnable tasks.
#[derive(Debug, Default)]
pub struct RoundRobinScheduler {
    last: usize,
}

impl Scheduler for RoundRobinScheduler {
    fn new_execution(&mut self) {
        self.last = 0;
    }

    fn next_task(&mut self, runnable: &[TaskId], _current: Option<TaskId>) -> TaskId {
        let next = runnable.iter().find(|t| t.0 > self.last).copied().unwrap_or(runnable[0]);
        self.last = next.0;
        next
    }
}

/// Bounded depth-first systematic enumeration of schedules.
///
/// Maintains the path of choices taken in the current execution; after each
/// execution it advances the deepest unexhausted choice and replays the
/// prefix. Exploration is exhaustive provided the test body is
/// deterministic given the schedule (the same property the paper relies on
/// for minimization, §4.3).
#[derive(Debug, Default)]
pub struct DfsScheduler {
    /// `(choice index, number of alternatives)` at each decision depth.
    path: Vec<(usize, usize)>,
    depth: usize,
    exhausted: bool,
}

impl DfsScheduler {
    /// Returns true when the entire schedule space has been explored.
    pub fn exhausted(&self) -> bool {
        self.exhausted
    }
}

impl Scheduler for DfsScheduler {
    fn new_execution(&mut self) {
        self.depth = 0;
    }

    fn next_task(&mut self, runnable: &[TaskId], _current: Option<TaskId>) -> TaskId {
        if self.depth < self.path.len() {
            let (choice, alts) = self.path[self.depth];
            debug_assert_eq!(
                alts,
                runnable.len(),
                "non-deterministic test body: runnable set changed on replay"
            );
            self.depth += 1;
            runnable[choice.min(runnable.len() - 1)]
        } else {
            self.path.push((0, runnable.len()));
            self.depth += 1;
            runnable[0]
        }
    }

    fn prepare_next(&mut self) -> bool {
        // Backtrack: drop fully-explored suffix, advance the last choice.
        while let Some((choice, alts)) = self.path.last().copied() {
            if choice + 1 < alts {
                self.path.last_mut().expect("non-empty").0 = choice + 1;
                return true;
            }
            self.path.pop();
        }
        self.exhausted = true;
        false
    }
}

/// Replays a fixed schedule (a sequence of task choices).
#[derive(Debug)]
pub struct ReplayScheduler {
    schedule: Vec<TaskId>,
    pos: usize,
}

impl ReplayScheduler {
    /// Creates a replay scheduler from a recorded schedule.
    pub fn new(schedule: Vec<TaskId>) -> Self {
        Self { schedule, pos: 0 }
    }
}

impl Scheduler for ReplayScheduler {
    fn new_execution(&mut self) {
        self.pos = 0;
    }

    fn next_task(&mut self, runnable: &[TaskId], _current: Option<TaskId>) -> TaskId {
        let choice = self.schedule.get(self.pos).copied();
        self.pos += 1;
        match choice {
            Some(t) if runnable.contains(&t) => t,
            // Past the recorded schedule (or divergence): fall back to the
            // first runnable task so the execution can still finish.
            _ => runnable[0],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[usize]) -> Vec<TaskId> {
        v.iter().map(|i| TaskId(*i)).collect()
    }

    #[test]
    fn random_scheduler_is_deterministic_per_seed() {
        let runnable = ids(&[0, 1, 2]);
        let pick = |seed| {
            let mut s = RandomScheduler::new(seed);
            (0..20).map(|_| s.next_task(&runnable, None).0).collect::<Vec<_>>()
        };
        assert_eq!(pick(7), pick(7));
    }

    #[test]
    fn round_robin_cycles() {
        let mut s = RoundRobinScheduler::default();
        s.new_execution();
        let runnable = ids(&[0, 1, 2]);
        let picks: Vec<_> = (0..6).map(|_| s.next_task(&runnable, None).0).collect();
        assert_eq!(picks, vec![1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn dfs_enumerates_all_binary_schedules() {
        let mut s = DfsScheduler::default();
        let runnable = ids(&[0, 1]);
        let mut seen = Vec::new();
        loop {
            s.new_execution();
            // Simulate an execution with exactly two binary choices.
            let a = s.next_task(&runnable, None).0;
            let b = s.next_task(&runnable, None).0;
            seen.push((a, b));
            if !s.prepare_next() {
                break;
            }
        }
        assert_eq!(seen, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert!(s.exhausted());
    }

    #[test]
    fn pct_always_picks_a_runnable_task() {
        let mut s = PctScheduler::new(99, 3);
        s.new_execution();
        for t in 0..4 {
            s.on_spawn(TaskId(t));
        }
        let runnable = ids(&[1, 3]);
        for _ in 0..50 {
            let t = s.next_task(&runnable, None);
            assert!(runnable.contains(&t));
        }
    }

    #[test]
    fn pct_prefers_highest_priority() {
        let mut s = PctScheduler::new(1, 1); // depth 1: no change points
        s.new_execution();
        for t in 0..3 {
            s.on_spawn(TaskId(t));
        }
        let runnable = ids(&[0, 1, 2]);
        let first = s.next_task(&runnable, None);
        // With no change points the same task keeps winning.
        for _ in 0..10 {
            assert_eq!(s.next_task(&runnable, None), first);
        }
    }

    #[test]
    fn replay_follows_recorded_schedule() {
        let mut s = ReplayScheduler::new(ids(&[1, 0, 1]));
        s.new_execution();
        let runnable = ids(&[0, 1]);
        assert_eq!(s.next_task(&runnable, None), TaskId(1));
        assert_eq!(s.next_task(&runnable, None), TaskId(0));
        assert_eq!(s.next_task(&runnable, None), TaskId(1));
        // Past the end: falls back to first runnable.
        assert_eq!(s.next_task(&runnable, None), TaskId(0));
    }
}
