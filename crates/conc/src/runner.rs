//! The checking loop: run a closure under many schedules and report the
//! first failing one as a replayable artifact.

use std::fmt;
use std::sync::Arc;

use crate::execution::{run_task, AbortReason, ExecutionInner, TaskId};
use crate::scheduler::{ReplayScheduler, Scheduler, SchedulerKind};

/// A recorded schedule: the task chosen at every scheduling decision.
///
/// Together with the (deterministic) test body, a schedule fully determines
/// an execution, so a failing schedule can be replayed with [`replay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule(pub Vec<TaskId>);

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", t.0)?;
        }
        write!(f, "]")
    }
}

/// Options for [`check`].
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// The scheduling strategy.
    pub scheduler: SchedulerKind,
    /// Maximum number of executions to run.
    pub iterations: usize,
    /// Per-execution scheduling-decision budget (livelock guard).
    pub max_steps: usize,
}

impl CheckOptions {
    /// Random-walk checking (Shuttle-style) with a seed and iteration count.
    pub fn random(seed: u64, iterations: usize) -> Self {
        Self { scheduler: SchedulerKind::Random { seed }, iterations, max_steps: 200_000 }
    }

    /// PCT checking with a seed, bug depth, and iteration count.
    pub fn pct(seed: u64, depth: usize, iterations: usize) -> Self {
        Self { scheduler: SchedulerKind::Pct { seed, depth }, iterations, max_steps: 200_000 }
    }

    /// Bounded exhaustive DFS (Loom-style) with an iteration cap.
    pub fn dfs(max_iterations: usize) -> Self {
        Self { scheduler: SchedulerKind::Dfs, iterations: max_iterations, max_steps: 200_000 }
    }

    /// Deterministic round-robin baseline (one iteration is enough).
    pub fn round_robin() -> Self {
        Self { scheduler: SchedulerKind::RoundRobin, iterations: 1, max_steps: 200_000 }
    }

    /// Overrides the per-execution step budget.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }
}

/// Outcome of a successful [`check`] run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Number of executions actually run.
    pub iterations: usize,
    /// True if a DFS scheduler exhausted the entire schedule space, i.e.
    /// the result is sound rather than merely probabilistic.
    pub exhausted: bool,
}

/// A failed [`check`] run.
#[derive(Debug, Clone)]
pub enum CheckError {
    /// A task panicked (assertion failure or real bug).
    Failure {
        /// Iteration index at which the failure occurred.
        iteration: usize,
        /// The failing schedule, for [`replay`].
        schedule: Schedule,
        /// The panic message.
        message: String,
    },
    /// Every live task was blocked.
    Deadlock {
        /// Iteration index at which the deadlock occurred.
        iteration: usize,
        /// The deadlocking schedule, for [`replay`].
        schedule: Schedule,
        /// One diagnosis line per blocked task.
        blocked: Vec<String>,
    },
    /// The execution exceeded its step budget (possible livelock).
    StepLimit {
        /// Iteration index at which the budget was exceeded.
        iteration: usize,
        /// The step budget that was exceeded.
        max_steps: usize,
    },
}

impl fmt::Display for CheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckError::Failure { iteration, schedule, message } => {
                write!(
                    f,
                    "failure at iteration {iteration}: {message}\n  replay schedule: {schedule}"
                )
            }
            CheckError::Deadlock { iteration, schedule, blocked } => {
                writeln!(f, "deadlock at iteration {iteration}:")?;
                for b in blocked {
                    writeln!(f, "  {b}")?;
                }
                write!(f, "  replay schedule: {schedule}")
            }
            CheckError::StepLimit { iteration, max_steps } => {
                write!(
                    f,
                    "step budget of {max_steps} exceeded at iteration {iteration} (livelock?)"
                )
            }
        }
    }
}

impl std::error::Error for CheckError {}

impl CheckError {
    /// The failing schedule, if the error carries one.
    pub fn schedule(&self) -> Option<&Schedule> {
        match self {
            CheckError::Failure { schedule, .. } | CheckError::Deadlock { schedule, .. } => {
                Some(schedule)
            }
            CheckError::StepLimit { .. } => None,
        }
    }
}

fn run_once<F: Fn() + Send + Sync>(
    scheduler: Box<dyn Scheduler>,
    max_steps: usize,
    f: &F,
) -> (Box<dyn Scheduler>, Schedule, Option<AbortReason>) {
    let exec = ExecutionInner::new(scheduler, max_steps);
    let exec2 = Arc::clone(&exec);
    let (schedule, abort) = std::thread::scope(|s| {
        s.spawn(move || {
            run_task(&exec2, TaskId(0), f);
            exec2.task_thread_exited();
        });
        exec.wait_outcome()
    });
    let scheduler = exec.take_scheduler();
    (scheduler, Schedule(schedule), abort)
}

fn abort_to_error(iteration: usize, schedule: Schedule, reason: AbortReason) -> CheckError {
    match reason {
        AbortReason::Failure(message) => CheckError::Failure { iteration, schedule, message },
        AbortReason::Deadlock(blocked) => CheckError::Deadlock {
            iteration,
            schedule,
            blocked: blocked.into_iter().map(|(_, d)| d).collect(),
        },
        AbortReason::StepLimit(max_steps) => CheckError::StepLimit { iteration, max_steps },
    }
}

/// Checks a concurrent test body under many schedules.
///
/// The body must be deterministic apart from scheduling (create all state
/// inside the closure; do not use wall-clock time or OS randomness), so
/// that a failing [`Schedule`] replays exactly.
///
/// Returns a [`CheckReport`] if every explored schedule passed, or the
/// first failing schedule as a [`CheckError`].
pub fn check<F>(options: CheckOptions, f: F) -> Result<CheckReport, CheckError>
where
    F: Fn() + Send + Sync,
{
    let mut scheduler = options.scheduler.build();
    let mut iterations = 0;
    let mut exhausted = false;
    for iteration in 0..options.iterations {
        scheduler.new_execution();
        let (sched, schedule, abort) = run_once(scheduler, options.max_steps, &f);
        scheduler = sched;
        iterations += 1;
        if let Some(reason) = abort {
            return Err(abort_to_error(iteration, schedule, reason));
        }
        if !scheduler.prepare_next() {
            exhausted = true;
            break;
        }
    }
    Ok(CheckReport { iterations, exhausted })
}

/// Replays a recorded schedule against the same test body.
///
/// Returns `Ok(())` if the replayed execution passes (which indicates the
/// body is not deterministic), or the reproduced failure.
pub fn replay<F>(schedule: &Schedule, max_steps: usize, f: F) -> Result<(), CheckError>
where
    F: Fn() + Send + Sync,
{
    let mut scheduler: Box<dyn Scheduler> = Box::new(ReplayScheduler::new(schedule.0.clone()));
    scheduler.new_execution();
    let (_sched, schedule, abort) = run_once(scheduler, max_steps, &f);
    match abort {
        Some(reason) => Err(abort_to_error(0, schedule, reason)),
        None => Ok(()),
    }
}
