//! Dual-mode synchronization primitives.
//!
//! These types have the same shape as their `std`/`parking_lot`
//! counterparts. Outside a checked execution they delegate directly to
//! `parking_lot` (locks) and `std::sync::atomic` (atomics) with no
//! scheduling overhead. Inside a checked execution every operation becomes
//! a scheduling point, and blocking is mediated by the checker so that the
//! scheduler fully controls interleaving and can detect deadlocks.
//!
//! Lock acquisition in controlled mode never blocks at the OS level: it
//! spins on `try_lock` under the single-running-task discipline and parks
//! the task with the checker when the lock is logically held, so the
//! underlying `parking_lot` lock is only ever taken when it is free.

use std::sync::atomic::Ordering;

use crate::execution::{current, Resource};

/// Address-based identity for a primitive within one execution.
///
/// Primitives created inside the test closure are pinned for as long as any
/// task can reference them, so their address is a stable identity for the
/// duration of an execution.
fn addr_of<T: ?Sized>(x: &T) -> usize {
    x as *const T as *const () as usize
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock; a drop-in `parking_lot::Mutex` replacement that
/// becomes checker-controlled inside a checked execution.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: parking_lot::Mutex<T>,
}

/// RAII guard for [`Mutex`].
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    mutex: &'a Mutex<T>,
    inner: Option<parking_lot::MutexGuard<'a, T>>,
    controlled: bool,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: parking_lot::Mutex::new(value) }
    }

    fn resource(&self) -> usize {
        addr_of(&self.inner)
    }

    /// Acquires the lock, blocking (or parking with the checker) until it
    /// is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some((exec, me)) = current() {
            loop {
                exec.schedule_point(me);
                if let Some(g) = self.inner.try_lock() {
                    return MutexGuard { mutex: self, inner: Some(g), controlled: true };
                }
                exec.block_on(me, Resource::Mutex(self.resource()));
            }
        } else {
            MutexGuard { mutex: self, inner: Some(self.inner.lock()), controlled: false }
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let controlled = if let Some((exec, me)) = current() {
            exec.schedule_point(me);
            true
        } else {
            false
        };
        self.inner.try_lock().map(|g| MutexGuard { mutex: self, inner: Some(g), controlled })
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Mutably borrows the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<'a, T> MutexGuard<'a, T> {
    fn release(&mut self) {
        let was_controlled = self.controlled;
        let resource = self.mutex.resource();
        self.inner = None;
        if was_controlled {
            if let Some((exec, _)) = current() {
                exec.unblock_where(|r| *r == Resource::Mutex(resource));
            }
        }
    }
}

impl<'a, T> Drop for MutexGuard<'a, T> {
    fn drop(&mut self) {
        if self.inner.is_some() {
            self.release();
        }
    }
}

impl<'a, T> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard released")
    }
}

impl<'a, T> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard released")
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable; a drop-in `parking_lot::Condvar` replacement that
/// becomes checker-controlled inside a checked execution.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: parking_lot::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self { inner: parking_lot::Condvar::new() }
    }

    fn resource(&self) -> usize {
        addr_of(&self.inner)
    }

    /// Atomically releases the guard and waits for a notification, then
    /// re-acquires the lock.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        if let Some((exec, me)) = current() {
            debug_assert!(guard.controlled, "mixing controlled and uncontrolled guards");
            let mutex = guard.mutex;
            // Release the lock; because we hold the turn, no other task can
            // observe an intermediate state, so release-then-block is
            // atomic from the schedule's point of view.
            guard.release();
            drop(guard);
            exec.block_on(me, Resource::Condvar(self.resource()));
            mutex.lock()
        } else {
            let mut inner = guard.inner.take().expect("guard released");
            self.inner.wait(&mut inner);
            MutexGuard { mutex: guard.mutex, inner: Some(inner), controlled: false }
        }
    }

    /// Waits until `pred` returns false (matching `parking_lot`'s
    /// `wait_while` semantics: waits *while* the predicate holds).
    pub fn wait_while<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut pred: impl FnMut(&mut T) -> bool,
    ) -> MutexGuard<'a, T> {
        while pred(&mut *guard) {
            guard = self.wait(guard);
        }
        guard
    }

    /// Wakes one waiting task.
    pub fn notify_one(&self) {
        if let Some((exec, me)) = current() {
            exec.schedule_point(me);
            exec.notify_condvar(self.resource(), 1);
        } else {
            self.inner.notify_one();
        }
    }

    /// Wakes all waiting tasks.
    pub fn notify_all(&self) {
        if let Some((exec, me)) = current() {
            exec.schedule_point(me);
            exec.notify_condvar(self.resource(), usize::MAX);
        } else {
            self.inner.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock; a drop-in `parking_lot::RwLock` replacement that
/// becomes checker-controlled inside a checked execution.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: parking_lot::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<parking_lot::RwLockReadGuard<'a, T>>,
    controlled: bool,
}

/// Exclusive-write RAII guard for [`RwLock`].
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<parking_lot::RwLockWriteGuard<'a, T>>,
    controlled: bool,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self { inner: parking_lot::RwLock::new(value) }
    }

    fn resource(&self) -> usize {
        addr_of(&self.inner)
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if let Some((exec, me)) = current() {
            loop {
                exec.schedule_point(me);
                if let Some(g) = self.inner.try_read() {
                    return RwLockReadGuard { lock: self, inner: Some(g), controlled: true };
                }
                exec.block_on(me, Resource::RwRead(self.resource()));
            }
        } else {
            RwLockReadGuard { lock: self, inner: Some(self.inner.read()), controlled: false }
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if let Some((exec, me)) = current() {
            loop {
                exec.schedule_point(me);
                if let Some(g) = self.inner.try_write() {
                    return RwLockWriteGuard { lock: self, inner: Some(g), controlled: true };
                }
                exec.block_on(me, Resource::RwWrite(self.resource()));
            }
        } else {
            RwLockWriteGuard { lock: self, inner: Some(self.inner.write()), controlled: false }
        }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Mutably borrows the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

fn unblock_rw(resource: usize) {
    if let Some((exec, _)) = current() {
        exec.unblock_where(|r| {
            *r == Resource::RwRead(resource) || *r == Resource::RwWrite(resource)
        });
    }
}

impl<'a, T> Drop for RwLockReadGuard<'a, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.controlled {
            unblock_rw(self.lock.resource());
        }
    }
}

impl<'a, T> Drop for RwLockWriteGuard<'a, T> {
    fn drop(&mut self) {
        self.inner = None;
        if self.controlled {
            unblock_rw(self.lock.resource());
        }
    }
}

impl<'a, T> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard released")
    }
}

impl<'a, T> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard released")
    }
}

impl<'a, T> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard released")
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Inserts a scheduling point before an atomic operation.
#[inline]
fn atomic_point() {
    if let Some((exec, me)) = current() {
        exec.schedule_point(me);
    }
}

macro_rules! atomic_wrapper {
    ($name:ident, $std:ty, $prim:ty) => {
        /// Dual-mode atomic integer; every operation is a scheduling point
        /// inside a checked execution. All operations use sequentially
        /// consistent ordering.
        #[derive(Debug, Default)]
        pub struct $name(pub(crate) $std);

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $prim) -> Self {
                Self(<$std>::new(v))
            }

            /// Atomically loads the value.
            pub fn load(&self) -> $prim {
                atomic_point();
                self.0.load(Ordering::SeqCst)
            }

            /// Atomically stores a value.
            pub fn store(&self, v: $prim) {
                atomic_point();
                self.0.store(v, Ordering::SeqCst)
            }

            /// Atomically swaps in a new value, returning the old one.
            pub fn swap(&self, v: $prim) -> $prim {
                atomic_point();
                self.0.swap(v, Ordering::SeqCst)
            }

            /// Atomically compares and exchanges the value.
            pub fn compare_exchange(&self, current: $prim, new: $prim) -> Result<$prim, $prim> {
                atomic_point();
                self.0.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }
        }
    };
}

atomic_wrapper!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
atomic_wrapper!(AtomicU64, std::sync::atomic::AtomicU64, u64);

impl AtomicUsize {
    /// Atomically adds, returning the previous value.
    pub fn fetch_add(&self, v: usize) -> usize {
        atomic_point();
        self.0.fetch_add(v, Ordering::SeqCst)
    }

    /// Atomically subtracts, returning the previous value.
    pub fn fetch_sub(&self, v: usize) -> usize {
        atomic_point();
        self.0.fetch_sub(v, Ordering::SeqCst)
    }
}

impl AtomicU64 {
    /// Atomically adds, returning the previous value.
    pub fn fetch_add(&self, v: u64) -> u64 {
        atomic_point();
        self.0.fetch_add(v, Ordering::SeqCst)
    }
}

/// Dual-mode atomic boolean; every operation is a scheduling point inside a
/// checked execution. All operations use sequentially consistent ordering.
#[derive(Debug, Default)]
pub struct AtomicBool(std::sync::atomic::AtomicBool);

impl AtomicBool {
    /// Creates a new atomic boolean.
    pub const fn new(v: bool) -> Self {
        Self(std::sync::atomic::AtomicBool::new(v))
    }

    /// Atomically loads the value.
    pub fn load(&self) -> bool {
        atomic_point();
        self.0.load(Ordering::SeqCst)
    }

    /// Atomically stores a value.
    pub fn store(&self, v: bool) {
        atomic_point();
        self.0.store(v, Ordering::SeqCst)
    }

    /// Atomically swaps in a new value, returning the old one.
    pub fn swap(&self, v: bool) -> bool {
        atomic_point();
        self.0.swap(v, Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_mutex_basics() {
        let m = Mutex::new(5);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn passthrough_try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn passthrough_rwlock_many_readers() {
        let l = RwLock::new(7);
        let r1 = l.read();
        let r2 = l.read();
        assert_eq!(*r1 + *r2, 14);
        drop((r1, r2));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn passthrough_condvar_roundtrip() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
            drop(g);
        });
        let (m, cv) = &*pair;
        let g = m.lock();
        let g = cv.wait_while(g, |ready| !*ready);
        assert!(*g);
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn passthrough_atomics() {
        let a = AtomicUsize::new(1);
        assert_eq!(a.fetch_add(2), 1);
        assert_eq!(a.load(), 3);
        assert_eq!(a.swap(10), 3);
        assert_eq!(a.compare_exchange(10, 11), Ok(10));
        assert_eq!(a.compare_exchange(10, 12), Err(11));
        let b = AtomicBool::new(false);
        b.store(true);
        assert!(b.load());
        assert!(b.swap(false));
    }
}
