//! Dual-mode threads.
//!
//! [`spawn`] creates a real OS thread in passthrough mode, or registers a
//! new controlled task with the active checked execution. Controlled tasks
//! still run on their own OS threads, but only when the checker gives them
//! the turn.

use std::panic;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::execution::{current, panic_message, AbortPanic, Resource, TaskRegistration};
use crate::TaskId;

/// The result of joining a thread, mirroring `std::thread::Result`.
pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

enum Inner<T> {
    Std(std::thread::JoinHandle<T>),
    Controlled {
        exec: Arc<crate::execution::ExecutionInner>,
        task: TaskId,
        result: Arc<Mutex<Option<Result<T>>>>,
    },
}

/// Handle to a spawned thread or controlled task.
pub struct JoinHandle<T> {
    inner: Inner<T>,
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Inner::Std(_) => write!(f, "JoinHandle(os)"),
            Inner::Controlled { task, .. } => write!(f, "JoinHandle({task})"),
        }
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread/task to finish and returns its result.
    pub fn join(self) -> Result<T> {
        match self.inner {
            Inner::Std(h) => h.join(),
            Inner::Controlled { exec, task, result } => {
                let (cur_exec, me) = current().expect("joining a controlled task from outside");
                debug_assert!(Arc::ptr_eq(&cur_exec, &exec), "join across executions");
                if !exec.is_finished(task) {
                    exec.block_on(me, Resource::Join(task));
                }
                result
                    .lock()
                    .take()
                    .expect("joined task finished without storing a result")
            }
        }
    }
}

/// Spawns a thread (passthrough) or a controlled task (checked execution).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if let Some((exec, _me)) = current() {
        let task = exec.spawn_task(format!("task-{}", exec.steps()));
        let result: Arc<Mutex<Option<Result<T>>>> = Arc::new(Mutex::new(None));
        let result2 = Arc::clone(&result);
        let exec2 = Arc::clone(&exec);
        std::thread::spawn(move || {
            let _reg = TaskRegistration::enter(Arc::clone(&exec2), task);
            exec2.wait_for_turn(task);
            let out = panic::catch_unwind(panic::AssertUnwindSafe(f));
            match out {
                Ok(v) => {
                    *result2.lock() = Some(Ok(v));
                    exec2.finish_task(task, None);
                }
                Err(payload) => {
                    if payload.downcast_ref::<AbortPanic>().is_some() {
                        exec2.finish_task(task, None);
                    } else {
                        let msg = panic_message(&payload);
                        *result2.lock() = Some(Err(payload));
                        exec2.finish_task(task, Some(msg));
                    }
                }
            }
            exec2.task_thread_exited();
        });
        JoinHandle { inner: Inner::Controlled { exec, task, result } }
    } else {
        JoinHandle { inner: Inner::Std(std::thread::spawn(f)) }
    }
}

/// Yields execution: a scheduling point in checked mode, an OS yield
/// otherwise.
pub fn yield_now() {
    if crate::is_controlled() {
        crate::yield_now();
    } else {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_spawn_and_join() {
        let h = spawn(|| 40 + 2);
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn passthrough_join_propagates_panic() {
        let h = spawn(|| panic!("boom"));
        assert!(h.join().is_err());
    }
}
