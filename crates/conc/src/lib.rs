//! A from-scratch stateless model checker for concurrent Rust code, plus
//! dual-mode synchronization primitives.
//!
//! The paper (§6) validates ShardStore's concurrent executions with two
//! stateless model checkers: Loom (sound, exhaustive, for small
//! correctness-critical code) and Shuttle (randomized, scalable, for
//! end-to-end harnesses; it implements probabilistic concurrency testing).
//! This crate rebuilds that capability from scratch:
//!
//! - [`sync`] provides `Mutex`, `RwLock`, `Condvar`, and atomic wrappers,
//!   and [`thread`] provides `spawn`/`JoinHandle`. Outside a checked
//!   execution they pass straight through to `parking_lot`/`std` with no
//!   scheduling overhead, so production-shaped code can use them
//!   unconditionally. Inside a checked execution every operation becomes a
//!   scheduling point controlled by the checker.
//! - [`check`] runs a closure many times under a chosen [`Scheduler`]:
//!   a uniform random walk, PCT (the randomized algorithm with probabilistic
//!   bug-finding guarantees used by Shuttle), round-robin, or a bounded
//!   depth-first systematic enumeration that plays the role Loom plays in
//!   the paper for small harnesses.
//! - Failing interleavings are reported as a replayable [`Schedule`]
//!   (the exact sequence of task choices), and [`replay`] re-executes it
//!   deterministically.
//! - If every live task is blocked the checker reports a deadlock with a
//!   per-task blocked-on diagnosis (this is how issue #12 in Fig. 5 of the
//!   paper was caught).
//!
//! The checker explores interleavings at sequential-consistency
//! granularity (every lock, condvar, and atomic operation is a scheduling
//! point). It does not model weak memory; the paper's Loom usage covers
//! release/acquire subtleties, which are out of scope here because all
//! ShardStore-repro components synchronize exclusively through locks.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use shardstore_conc::{check, CheckOptions, sync::Mutex, thread};
//!
//! let opts = CheckOptions::random(12345, 100);
//! check(opts, || {
//!     let counter = Arc::new(Mutex::new(0u32));
//!     let mut handles = Vec::new();
//!     for _ in 0..2 {
//!         let counter = Arc::clone(&counter);
//!         handles.push(thread::spawn(move || {
//!             *counter.lock() += 1;
//!         }));
//!     }
//!     for h in handles {
//!         h.join().unwrap();
//!     }
//!     assert_eq!(*counter.lock(), 2);
//! })
//! .unwrap();
//! ```

mod execution;
mod runner;
pub mod scheduler;
pub mod sync;
pub mod thread;

pub use execution::{current_task_id, is_controlled, yield_now, TaskId};
pub use runner::{check, replay, CheckError, CheckOptions, CheckReport, Schedule};
pub use scheduler::{Scheduler, SchedulerKind};
