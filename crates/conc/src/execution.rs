//! The controlled-execution engine.
//!
//! A checked execution runs every *task* (logical thread) on a real OS
//! thread, but only ever lets one task run at a time: a task owns the *turn*
//! until it reaches a scheduling point (a lock, condvar, atomic, spawn, join
//! or explicit yield), at which point the active [`Scheduler`] picks the
//! next task to run. This serializes the program while still exercising
//! real concurrent interleavings, exactly like the Shuttle checker the
//! paper uses.
//!
//! The engine also performs deadlock detection: if every unfinished task is
//! blocked, the execution aborts with a per-task diagnosis of what each
//! task was waiting for.

use std::cell::RefCell;
use std::fmt;
use std::panic;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::scheduler::Scheduler;

/// Identifier of a task (logical thread) within one checked execution.
///
/// Task 0 is always the root task (the closure passed to `check`); spawned
/// tasks get consecutive ids in spawn order, which is deterministic for a
/// deterministic test body under a fixed schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub usize);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// What a blocked task is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Resource {
    /// Waiting to acquire a mutex (keyed by the mutex's address).
    Mutex(usize),
    /// Waiting to acquire a read lock.
    RwRead(usize),
    /// Waiting to acquire a write lock.
    RwWrite(usize),
    /// Waiting on a condition variable.
    Condvar(usize),
    /// Waiting for another task to finish.
    Join(TaskId),
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Mutex(a) => write!(f, "mutex@{a:#x}"),
            Resource::RwRead(a) => write!(f, "rwlock(read)@{a:#x}"),
            Resource::RwWrite(a) => write!(f, "rwlock(write)@{a:#x}"),
            Resource::Condvar(a) => write!(f, "condvar@{a:#x}"),
            Resource::Join(t) => write!(f, "join({t})"),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TaskStatus {
    Runnable,
    Blocked(Resource),
    Finished,
}

/// Why an execution aborted before completing normally.
#[derive(Debug, Clone)]
pub(crate) enum AbortReason {
    /// A task panicked with this message.
    Failure(String),
    /// Every live task was blocked; the payload describes each blocked task.
    Deadlock(Vec<(TaskId, String)>),
    /// The execution exceeded the configured step limit (possible livelock).
    StepLimit(usize),
}

/// Sentinel panic payload used to unwind tasks when an execution aborts.
///
/// Task wrappers recognize this payload and do not treat it as a failure.
pub(crate) struct AbortPanic;

struct TaskState {
    status: TaskStatus,
    name: String,
}

pub(crate) struct ExecState {
    tasks: Vec<TaskState>,
    current: Option<TaskId>,
    scheduler: Option<Box<dyn Scheduler>>,
    /// The recorded schedule: the task chosen at each scheduling decision.
    schedule: Vec<TaskId>,
    abort: Option<AbortReason>,
    steps: usize,
    max_steps: usize,
    live_tasks: usize,
    done: bool,
}

/// Shared state of one checked execution.
pub(crate) struct ExecutionInner {
    state: Mutex<ExecState>,
    cv: Condvar,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<ExecutionInner>, TaskId)>> = const { RefCell::new(None) };
}

/// Returns the active execution and task for this OS thread, if any.
pub(crate) fn current() -> Option<(Arc<ExecutionInner>, TaskId)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Returns true if this thread is running inside a checked execution.
pub fn is_controlled() -> bool {
    CURRENT.with(|c| c.borrow().is_some())
}

/// Returns the current task id inside a checked execution, if any.
pub fn current_task_id() -> Option<TaskId> {
    CURRENT.with(|c| c.borrow().as_ref().map(|(_, t)| *t))
}

/// Explicit scheduling point: lets the checker switch to another task
/// here, hinting priority-based schedulers to deprioritize the yielder
/// (so spin loops built on `yield_now` cannot starve their partners).
///
/// Outside a checked execution this is a no-op.
pub fn yield_now() {
    if let Some((exec, me)) = current() {
        exec.yield_hint(me);
        exec.schedule_point(me);
    }
}

/// RAII registration of the current OS thread as a controlled task.
pub(crate) struct TaskRegistration;

impl TaskRegistration {
    pub(crate) fn enter(exec: Arc<ExecutionInner>, task: TaskId) -> Self {
        CURRENT.with(|c| *c.borrow_mut() = Some((exec, task)));
        TaskRegistration
    }
}

impl Drop for TaskRegistration {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = None);
    }
}

impl ExecutionInner {
    /// Creates an execution with a root task (id 0) holding the turn.
    pub(crate) fn new(scheduler: Box<dyn Scheduler>, max_steps: usize) -> Arc<Self> {
        Arc::new(ExecutionInner {
            state: Mutex::new(ExecState {
                tasks: vec![TaskState { status: TaskStatus::Runnable, name: "root".into() }],
                current: Some(TaskId(0)),
                scheduler: Some(scheduler),
                schedule: Vec::new(),
                abort: None,
                steps: 0,
                max_steps,
                live_tasks: 1,
                done: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Registers a newly spawned task and returns its id. Called by the
    /// spawner while it holds the turn.
    pub(crate) fn spawn_task(&self, name: String) -> TaskId {
        let mut st = self.state.lock();
        let id = TaskId(st.tasks.len());
        st.tasks.push(TaskState { status: TaskStatus::Runnable, name });
        st.live_tasks += 1;
        if let Some(s) = st.scheduler.as_mut() {
            s.on_spawn(id);
        }
        id
    }

    /// A freshly spawned task parks here until it is first scheduled.
    pub(crate) fn wait_for_turn(&self, me: TaskId) {
        let mut st = self.state.lock();
        loop {
            if st.abort.is_some() {
                drop(st);
                panic::panic_any(AbortPanic);
            }
            if st.current == Some(me) {
                return;
            }
            self.cv.wait(&mut st);
        }
    }

    fn runnable(st: &ExecState) -> Vec<TaskId> {
        st.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == TaskStatus::Runnable)
            .map(|(i, _)| TaskId(i))
            .collect()
    }

    /// Picks the next task to run and hands it the turn. Caller must hold
    /// the state lock; `me` is the task giving up the turn (it may be
    /// blocked or finished at this point). Returns false when a deadlock
    /// was declared instead.
    fn dispatch(&self, st: &mut ExecState) -> bool {
        let runnable = Self::runnable(st);
        if runnable.is_empty() {
            if st.live_tasks == 0 {
                st.done = true;
                st.current = None;
                self.cv.notify_all();
                return true;
            }
            // Every live task is blocked: deadlock.
            let blocked = st
                .tasks
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match &t.status {
                    TaskStatus::Blocked(r) => {
                        Some((TaskId(i), format!("{} blocked on {}", t.name, r)))
                    }
                    _ => None,
                })
                .collect();
            st.abort = Some(AbortReason::Deadlock(blocked));
            st.current = None;
            self.cv.notify_all();
            return false;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            st.abort = Some(AbortReason::StepLimit(st.max_steps));
            st.current = None;
            self.cv.notify_all();
            return false;
        }
        let current = st.current;
        let mut scheduler = st.scheduler.take().expect("scheduler present during execution");
        let next = scheduler.next_task(&runnable, current);
        st.scheduler = Some(scheduler);
        debug_assert!(runnable.contains(&next), "scheduler chose a non-runnable task");
        st.schedule.push(next);
        st.current = Some(next);
        self.cv.notify_all();
        true
    }

    /// Records an explicit-yield hint for the scheduler.
    pub(crate) fn yield_hint(&self, me: TaskId) {
        let mut st = self.state.lock();
        if let Some(s) = st.scheduler.as_mut() {
            s.on_yield(me);
        }
    }

    /// A scheduling point: the current task offers to yield the turn.
    pub(crate) fn schedule_point(&self, me: TaskId) {
        let mut st = self.state.lock();
        if st.abort.is_some() {
            drop(st);
            panic::panic_any(AbortPanic);
        }
        debug_assert_eq!(st.current, Some(me), "schedule_point by a task without the turn");
        if !self.dispatch(&mut st) {
            drop(st);
            panic::panic_any(AbortPanic);
        }
        loop {
            if st.abort.is_some() {
                drop(st);
                panic::panic_any(AbortPanic);
            }
            if st.current == Some(me) {
                return;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Blocks the current task on `resource` and yields the turn. Returns
    /// once the task has been unblocked and rescheduled.
    pub(crate) fn block_on(&self, me: TaskId, resource: Resource) {
        let mut st = self.state.lock();
        if st.abort.is_some() {
            drop(st);
            panic::panic_any(AbortPanic);
        }
        debug_assert_eq!(st.current, Some(me), "block_on by a task without the turn");
        st.tasks[me.0].status = TaskStatus::Blocked(resource);
        if !self.dispatch(&mut st) {
            drop(st);
            panic::panic_any(AbortPanic);
        }
        loop {
            if st.abort.is_some() {
                drop(st);
                panic::panic_any(AbortPanic);
            }
            if st.current == Some(me) {
                return;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Marks every task blocked on a matching resource as runnable.
    ///
    /// Woken tasks do not run until the scheduler picks them; mutex waiters
    /// re-try their acquisition and re-block if they lose the race, which
    /// gives broadcast wakeup semantics.
    pub(crate) fn unblock_where(&self, pred: impl Fn(&Resource) -> bool) {
        let mut st = self.state.lock();
        for t in st.tasks.iter_mut() {
            if let TaskStatus::Blocked(r) = &t.status {
                if pred(r) {
                    t.status = TaskStatus::Runnable;
                }
            }
        }
    }

    /// Wakes at most `n` tasks blocked on the condvar with address `addr`,
    /// in task-id order. Returns how many were woken.
    pub(crate) fn notify_condvar(&self, addr: usize, n: usize) -> usize {
        let mut st = self.state.lock();
        let mut woken = 0;
        for t in st.tasks.iter_mut() {
            if woken == n {
                break;
            }
            if t.status == TaskStatus::Blocked(Resource::Condvar(addr)) {
                t.status = TaskStatus::Runnable;
                woken += 1;
            }
        }
        woken
    }

    /// Returns true if the given task has finished.
    pub(crate) fn is_finished(&self, task: TaskId) -> bool {
        let st = self.state.lock();
        st.tasks[task.0].status == TaskStatus::Finished
    }

    /// Marks the current task finished, records a failure if it panicked,
    /// wakes joiners, and passes the turn on.
    pub(crate) fn finish_task(&self, me: TaskId, failure: Option<String>) {
        let mut st = self.state.lock();
        st.tasks[me.0].status = TaskStatus::Finished;
        st.live_tasks -= 1;
        for t in st.tasks.iter_mut() {
            if t.status == TaskStatus::Blocked(Resource::Join(me)) {
                t.status = TaskStatus::Runnable;
            }
        }
        if let Some(msg) = failure {
            if st.abort.is_none() {
                st.abort = Some(AbortReason::Failure(msg));
            }
            st.current = None;
            self.cv.notify_all();
            return;
        }
        if st.abort.is_some() {
            // Aborting: just make sure everyone gets to observe it.
            self.cv.notify_all();
            return;
        }
        debug_assert_eq!(st.current, Some(me));
        self.dispatch(&mut st);
    }

    /// Waits until the execution completes or aborts, then returns the
    /// recorded schedule and the abort reason (if any). Also waits for all
    /// task threads to have finished unwinding so the next iteration starts
    /// clean.
    pub(crate) fn wait_outcome(&self) -> (Vec<TaskId>, Option<AbortReason>) {
        let mut st = self.state.lock();
        loop {
            if st.done || st.abort.is_some() {
                break;
            }
            self.cv.wait(&mut st);
        }
        // On abort, tasks still parked in wait loops will panic with the
        // sentinel as soon as they observe the abort flag; wait for them.
        while st.live_tasks > 0 {
            self.cv.notify_all();
            self.cv.wait(&mut st);
        }
        (st.schedule.clone(), st.abort.clone())
    }

    /// Notifies the controller that a task thread has fully exited.
    pub(crate) fn task_thread_exited(&self) {
        let _st = self.state.lock();
        self.cv.notify_all();
    }

    /// Retrieves the scheduler after the execution has completed.
    pub(crate) fn take_scheduler(&self) -> Box<dyn Scheduler> {
        self.state.lock().scheduler.take().expect("scheduler present after execution")
    }

    /// Number of scheduling decisions taken so far.
    pub(crate) fn steps(&self) -> usize {
        self.state.lock().steps
    }
}

/// Runs `body` as the root task of `exec` on the current thread, catching
/// panics. Returns the failure message if the body panicked for real.
pub(crate) fn run_task<F: FnOnce()>(
    exec: &Arc<ExecutionInner>,
    task: TaskId,
    body: F,
) -> Option<String> {
    let _reg = TaskRegistration::enter(Arc::clone(exec), task);
    exec.wait_for_turn(task);
    let result = panic::catch_unwind(panic::AssertUnwindSafe(body));
    match result {
        Ok(()) => {
            exec.finish_task(task, None);
            None
        }
        Err(payload) => {
            if payload.downcast_ref::<AbortPanic>().is_some() {
                exec.finish_task(task, None);
                None
            } else {
                let msg = panic_message(&payload);
                exec.finish_task(task, Some(msg.clone()));
                Some(msg)
            }
        }
    }
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "task panicked (non-string payload)".to_string()
    }
}
