//! End-to-end tests of the stateless model checker: bug finding, deadlock
//! detection, exhaustive enumeration, and deterministic replay.

use std::sync::Arc;

use shardstore_conc::sync::{AtomicUsize, Condvar, Mutex};
use shardstore_conc::{check, replay, thread, CheckError, CheckOptions};

/// A classic data race: two tasks perform read-modify-write without a lock
/// (via separate atomic load and store). Some interleaving loses an update.
fn racy_increment_body() {
    let counter = Arc::new(AtomicUsize::new(0));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let counter = Arc::clone(&counter);
        handles.push(thread::spawn(move || {
            let v = counter.load();
            counter.store(v + 1);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.load(), 2, "lost update");
}

#[test]
fn random_scheduler_finds_lost_update() {
    let err = check(CheckOptions::random(7, 500), racy_increment_body)
        .expect_err("the race should be found");
    match err {
        CheckError::Failure { message, .. } => assert!(message.contains("lost update")),
        other => panic!("expected failure, got {other}"),
    }
}

#[test]
fn pct_scheduler_finds_lost_update() {
    // PCT samples change points over its expected schedule length (far
    // longer than this tiny program), so per-iteration detection odds are
    // low; give the search enough budget to be robust across RNG streams.
    let err = check(CheckOptions::pct(11, 3, 2500), racy_increment_body)
        .expect_err("the race should be found");
    assert!(matches!(err, CheckError::Failure { .. }));
}

#[test]
fn dfs_scheduler_finds_lost_update_and_is_reproducible() {
    let err = check(CheckOptions::dfs(100_000), racy_increment_body)
        .expect_err("the race should be found");
    let schedule = err.schedule().expect("failure carries a schedule").clone();
    // Replaying the failing schedule reproduces the failure deterministically.
    let replay_err = replay(&schedule, 200_000, racy_increment_body)
        .expect_err("replay should reproduce the failure");
    assert!(matches!(replay_err, CheckError::Failure { .. }));
}

#[test]
fn locked_increment_passes_exhaustive_dfs() {
    let report = check(CheckOptions::dfs(100_000), || {
        let counter = Arc::new(Mutex::new(0usize));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let counter = Arc::clone(&counter);
            handles.push(thread::spawn(move || {
                *counter.lock() += 1;
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 2);
    })
    .expect("no failure expected");
    assert!(report.exhausted, "DFS should exhaust this small schedule space");
    assert!(report.iterations > 1, "there is more than one interleaving");
}

#[test]
fn detects_abba_deadlock() {
    let err = check(CheckOptions::random(3, 2_000), || {
        let a = Arc::new(Mutex::new(0u8));
        let b = Arc::new(Mutex::new(0u8));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = thread::spawn(move || {
            let _gb = b3.lock();
            let _ga = a3.lock();
        });
        let _ = t1.join();
        let _ = t2.join();
    })
    .expect_err("ABBA deadlock should be found");
    match err {
        CheckError::Deadlock { blocked, .. } => {
            assert!(blocked.len() >= 2, "both tasks should be reported: {blocked:?}");
        }
        other => panic!("expected deadlock, got {other}"),
    }
}

#[test]
fn condvar_handshake_works_under_all_schedulers() {
    let body = || {
        let state = Arc::new((Mutex::new(0u32), Condvar::new()));
        let state2 = Arc::clone(&state);
        let producer = thread::spawn(move || {
            let (m, cv) = &*state2;
            let mut g = m.lock();
            *g = 42;
            cv.notify_one();
        });
        let (m, cv) = &*state;
        let g = m.lock();
        let g = cv.wait_while(g, |v| *v == 0);
        assert_eq!(*g, 42);
        drop(g);
        producer.join().unwrap();
    };
    check(CheckOptions::random(5, 300), body).expect("random");
    check(CheckOptions::dfs(50_000), body).expect("dfs");
}

#[test]
fn condvar_notify_all_wakes_everyone() {
    check(CheckOptions::random(9, 200), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let state = Arc::clone(&state);
            handles.push(thread::spawn(move || {
                let (m, cv) = &*state;
                let g = m.lock();
                let g = cv.wait_while(g, |go| !*go);
                assert!(*g);
            }));
        }
        let (m, cv) = &*state;
        *m.lock() = true;
        cv.notify_all();
        for h in handles {
            h.join().unwrap();
        }
    })
    .expect("all waiters should wake");
}

#[test]
fn rwlock_allows_concurrent_reads_but_exclusive_writes() {
    use shardstore_conc::sync::RwLock;
    check(CheckOptions::random(21, 300), || {
        let lock = Arc::new(RwLock::new(vec![1, 2, 3]));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let lock = Arc::clone(&lock);
            handles.push(thread::spawn(move || lock.read().iter().sum::<i32>()));
        }
        let writer_lock = Arc::clone(&lock);
        let writer = thread::spawn(move || {
            writer_lock.write().push(4);
        });
        for h in handles {
            let sum = h.join().unwrap();
            // Readers see either the original or the extended vector.
            assert!(sum == 6 || sum == 10, "torn read: {sum}");
        }
        writer.join().unwrap();
        assert_eq!(lock.read().len(), 4);
    })
    .expect("no failure expected");
}

#[test]
fn step_limit_catches_livelock() {
    let err = check(CheckOptions::random(1, 1).with_max_steps(500), || {
        let stop = Arc::new(AtomicUsize::new(0));
        let stop2 = Arc::clone(&stop);
        // This task spins forever; the flag is never set.
        let spinner = thread::spawn(move || while stop2.load() == 0 {});
        let _ = spinner.join();
        drop(stop);
    })
    .expect_err("step limit should trip");
    assert!(matches!(err, CheckError::StepLimit { .. }));
}

#[test]
fn join_returns_value_through_checker() {
    check(CheckOptions::random(2, 100), || {
        let h = thread::spawn(|| 10 * 4 + 2);
        assert_eq!(h.join().unwrap(), 42);
    })
    .expect("no failure expected");
}

#[test]
fn nested_spawn_is_supported() {
    check(CheckOptions::random(13, 200), || {
        let h = thread::spawn(|| {
            let inner = thread::spawn(|| 7);
            inner.join().unwrap()
        });
        assert_eq!(h.join().unwrap(), 7);
    })
    .expect("no failure expected");
}

#[test]
fn random_check_is_deterministic_for_a_seed() {
    // The same seed must explore the same schedules: capture the failing
    // schedule twice and compare.
    let run = || match check(CheckOptions::random(1234, 500), racy_increment_body) {
        Err(CheckError::Failure { iteration, schedule, .. }) => (iteration, schedule),
        other => panic!("expected failure, got {other:?}"),
    };
    assert_eq!(run(), run());
}

#[test]
fn exhaustive_dfs_verifies_mutual_exclusion() {
    // A tiny critical-section harness: DFS proves no interleaving lets two
    // tasks into the critical section at once.
    let report = check(CheckOptions::dfs(200_000), || {
        let lock = Arc::new(Mutex::new(()));
        let inside = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let lock = Arc::clone(&lock);
            let inside = Arc::clone(&inside);
            handles.push(thread::spawn(move || {
                let _g = lock.lock();
                let was = inside.fetch_add(1);
                assert_eq!(was, 0, "mutual exclusion violated");
                inside.fetch_sub(1);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    })
    .expect("mutual exclusion should hold");
    assert!(report.exhausted);
}
