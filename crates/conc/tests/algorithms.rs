//! Classic concurrency algorithms under the checker: exhaustive
//! verification of small lock-free protocols (Loom's role in the paper)
//! and regression tests for checker features.

use std::sync::Arc;

use shardstore_conc::sync::{AtomicBool, AtomicUsize, Condvar, Mutex};
use shardstore_conc::{check, replay, thread, CheckError, CheckOptions};

/// Peterson's mutual-exclusion algorithm for two threads. The spin-wait
/// makes the schedule space unbounded, so exhaustive DFS does not apply
/// (exactly the §6 scalability limit); randomized and PCT exploration
/// cover it instead.
#[test]
fn peterson_mutual_exclusion_randomized() {
    let body = || {
        let flag0 = Arc::new(AtomicBool::new(false));
        let flag1 = Arc::new(AtomicBool::new(false));
        let turn = Arc::new(AtomicUsize::new(0));
        let in_critical = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for me in 0..2usize {
            let my_flag = if me == 0 { Arc::clone(&flag0) } else { Arc::clone(&flag1) };
            let other_flag = if me == 0 { Arc::clone(&flag1) } else { Arc::clone(&flag0) };
            let turn = Arc::clone(&turn);
            let in_critical = Arc::clone(&in_critical);
            handles.push(thread::spawn(move || {
                my_flag.store(true);
                turn.store(1 - me);
                while other_flag.load() && turn.load() == 1 - me {
                    shardstore_conc::yield_now();
                }
                // Critical section.
                let was = in_critical.fetch_add(1);
                assert_eq!(was, 0, "mutual exclusion violated");
                in_critical.fetch_sub(1);
                my_flag.store(false);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    };
    check(CheckOptions::random(3, 3_000), body).expect("Peterson holds under random walks");
    check(CheckOptions::pct(3, 3, 3_000), body).expect("Peterson holds under PCT");
}

/// A broken Peterson (missing the turn variable) is caught.
#[test]
fn broken_peterson_is_caught() {
    let err = check(CheckOptions::dfs(200_000), || {
        let flag0 = Arc::new(AtomicBool::new(false));
        let flag1 = Arc::new(AtomicBool::new(false));
        let in_critical = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for me in 0..2usize {
            let my_flag = if me == 0 { Arc::clone(&flag0) } else { Arc::clone(&flag1) };
            let other_flag = if me == 0 { Arc::clone(&flag1) } else { Arc::clone(&flag0) };
            let in_critical = Arc::clone(&in_critical);
            handles.push(thread::spawn(move || {
                // BUG: check-then-act — the load happens before our own
                // store, so both tasks can observe "free" and enter.
                if !other_flag.load() {
                    my_flag.store(true);
                    let was = in_critical.fetch_add(1);
                    assert_eq!(was, 0, "mutual exclusion violated");
                    in_critical.fetch_sub(1);
                    my_flag.store(false);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    })
    .expect_err("the broken protocol must be caught");
    assert!(matches!(err, CheckError::Failure { .. }));
}

/// A bounded single-producer/single-consumer queue built on
/// Mutex+Condvar: checked for both correctness and deadlock freedom.
#[test]
fn bounded_queue_spsc() {
    struct Queue {
        items: Mutex<Vec<u32>>,
        not_full: Condvar,
        not_empty: Condvar,
        capacity: usize,
    }
    impl Queue {
        fn push(&self, v: u32) {
            let guard = self.items.lock();
            let mut guard = self.not_full.wait_while(guard, |items| items.len() >= self.capacity);
            guard.push(v);
            drop(guard);
            self.not_empty.notify_one();
        }
        fn pop(&self) -> u32 {
            let guard = self.items.lock();
            let mut guard = self.not_empty.wait_while(guard, |items| items.is_empty());
            let v = guard.remove(0);
            drop(guard);
            self.not_full.notify_one();
            v
        }
    }
    check(CheckOptions::pct(77, 3, 400), || {
        let queue = Arc::new(Queue {
            items: Mutex::new(Vec::new()),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity: 2,
        });
        let producer_queue = Arc::clone(&queue);
        let producer = thread::spawn(move || {
            for v in 0..4u32 {
                producer_queue.push(v);
            }
        });
        let consumer_queue = Arc::clone(&queue);
        let consumer = thread::spawn(move || {
            // FIFO order must be preserved for a single producer.
            for expected in 0..4u32 {
                assert_eq!(consumer_queue.pop(), expected);
            }
        });
        producer.join().unwrap();
        consumer.join().unwrap();
    })
    .expect("the bounded queue is correct");
}

/// A lost-wakeup bug (notify before wait, flag checked without a loop) is
/// detected as a deadlock.
#[test]
fn lost_wakeup_detected_as_deadlock() {
    let err = check(CheckOptions::random(31, 2_000), || {
        let state = Arc::new((Mutex::new(false), Condvar::new()));
        let signaller_state = Arc::clone(&state);
        let signaller = thread::spawn(move || {
            let (m, cv) = &*signaller_state;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*state;
        // BUG: the flag is checked under one critical section, but the
        // wait happens under a second one — the notify can land in the
        // window between them and is lost.
        let ready = *m.lock();
        if !ready {
            let flag = m.lock();
            let _flag = cv.wait(flag);
        }
        signaller.join().unwrap();
    })
    .expect_err("the lost wakeup should deadlock some interleaving");
    assert!(matches!(err, CheckError::Deadlock { .. }), "got: {err}");
}

/// Deadlock schedules replay deterministically, like failure schedules.
#[test]
fn deadlock_schedules_replay() {
    let body = || {
        let a = Arc::new(Mutex::new(0u8));
        let b = Arc::new(Mutex::new(0u8));
        let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
        let t1 = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
        let t2 = thread::spawn(move || {
            let _gb = b3.lock();
            let _ga = a3.lock();
        });
        let _ = t1.join();
        let _ = t2.join();
    };
    let err = check(CheckOptions::random(5, 5_000), body).expect_err("ABBA deadlocks");
    let schedule = err.schedule().expect("deadlock carries a schedule").clone();
    let replayed = replay(&schedule, 200_000, body).expect_err("replay reproduces");
    assert!(matches!(replayed, CheckError::Deadlock { .. }));
}

/// try_lock never blocks under the checker and reports contention
/// accurately.
#[test]
fn try_lock_under_checker() {
    check(CheckOptions::dfs(50_000), || {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let holder = thread::spawn(move || {
            let _g = m2.lock();
            shardstore_conc::yield_now();
        });
        // Either we get the lock or we observe contention; both are fine,
        // and neither blocks the schedule.
        if let Some(mut g) = m.try_lock() {
            *g += 1;
        }
        holder.join().unwrap();
    })
    .expect("try_lock is non-blocking");
}

/// notify_one wakes exactly one waiter; the other stays blocked until the
/// second notify.
#[test]
fn notify_one_wakes_exactly_one() {
    check(CheckOptions::random(41, 300), || {
        let state = Arc::new((Mutex::new(0u32), Condvar::new()));
        let woken = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let state = Arc::clone(&state);
            let woken = Arc::clone(&woken);
            handles.push(thread::spawn(move || {
                let (m, cv) = &*state;
                let g = m.lock();
                let _g = cv.wait_while(g, |tokens| *tokens == 0);
                // Consume one token.
                let mut g = _g;
                *g -= 1;
                woken.fetch_add(1);
            }));
        }
        let (m, cv) = &*state;
        // Hand out two tokens, one notify each.
        for _ in 0..2 {
            *m.lock() += 1;
            cv.notify_one();
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(woken.load(), 2);
    })
    .expect("both waiters eventually wake");
}
