//! On-disk chunk framing and the extent scanner (§2.1, §5 of the paper).
//!
//! Chunk data is framed on disk with a two-byte magic header and a random
//! UUID repeated on both ends, allowing the chunk's length to be validated
//! (§5's worked example). The frame layout is:
//!
//! ```text
//! | magic (2) | len (4, LE) | uuid (16) | payload (len) | uuid (16) |
//! ```
//!
//! Deliberately, there is **no payload checksum**: integrity is validated
//! by the leading/trailing UUID match, exactly as in the paper — that
//! design is what makes the issue #10 UUID-collision bug possible, and the
//! fixed scanner closes it with an overlap check instead (see
//! [`scan_extent`]).
//!
//! All decoding is panic-free on arbitrary bytes (§7): the property suite
//! in this crate fuzzes [`decode_frame_at`] and [`scan_extent`] over
//! random buffers.

use shardstore_faults::{coverage, BugId, FaultConfig};
use shardstore_vdisk::codec::CodecError;

/// The two magic bytes opening every chunk frame.
pub const MAGIC: [u8; 2] = *b"MC";

/// Fixed framing overhead: magic + length + two UUID copies.
pub const FRAME_OVERHEAD: usize = 2 + 4 + 16 + 16;

/// Maximum payload length accepted by the decoder (an extent can never
/// hold more than this, and a corrupt length field must not cause large
/// allocations).
pub const MAX_PAYLOAD: usize = 1 << 24;

/// Encodes a payload into a frame with the given UUID.
pub fn encode_frame(payload: &[u8], uuid: u128) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&uuid.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&uuid.to_le_bytes());
    out
}

/// A chunk successfully decoded from an extent image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedFrame {
    /// Byte offset of the frame start within the scanned region.
    pub offset: usize,
    /// Payload length.
    pub payload_len: usize,
    /// The frame's UUID.
    pub uuid: u128,
}

impl DecodedFrame {
    /// Total frame length including overhead.
    pub fn frame_len(&self) -> usize {
        self.payload_len + FRAME_OVERHEAD
    }

    /// End offset (exclusive) of the frame.
    pub fn end(&self) -> usize {
        self.offset + self.frame_len()
    }

    /// Extracts the payload bytes from the containing buffer.
    pub fn payload<'a>(&self, buf: &'a [u8]) -> &'a [u8] {
        &buf[self.offset + 22..self.offset + 22 + self.payload_len]
    }
}

/// Attempts to decode a frame starting at `offset` in `buf`, reading no
/// further than `limit` (the extent's soft write pointer).
///
/// Returns `Ok` only if the magic matches, the length is in range, the
/// whole frame fits below `limit`, and the trailing UUID equals the
/// leading UUID.
pub fn decode_frame_at(buf: &[u8], offset: usize, limit: usize) -> Result<DecodedFrame, CodecError> {
    let limit = limit.min(buf.len());
    if offset + 22 > limit {
        return Err(CodecError::Truncated { needed: 22, remaining: limit.saturating_sub(offset) });
    }
    if buf[offset..offset + 2] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let len = u32::from_le_bytes([
        buf[offset + 2],
        buf[offset + 3],
        buf[offset + 4],
        buf[offset + 5],
    ]) as usize;
    if len > MAX_PAYLOAD {
        return Err(CodecError::BadLength);
    }
    let end = offset + FRAME_OVERHEAD + len;
    if end > limit {
        return Err(CodecError::BadLength);
    }
    let mut uuid_bytes = [0u8; 16];
    uuid_bytes.copy_from_slice(&buf[offset + 6..offset + 22]);
    let uuid = u128::from_le_bytes(uuid_bytes);
    let mut trailer = [0u8; 16];
    trailer.copy_from_slice(&buf[end - 16..end]);
    if u128::from_le_bytes(trailer) != uuid {
        return Err(CodecError::BadChecksum);
    }
    Ok(DecodedFrame { offset, payload_len: len, uuid })
}

/// Scans an extent image for chunk frames, mirroring the reclamation scan
/// of §5: start at offset 0; on a failed decode, skip to the next page
/// boundary and retry; on success, continue right after the frame.
///
/// The *fixed* scanner additionally guards against the issue #10 failure
/// mode: before accepting a decoded frame, it checks whether another valid
/// frame starts at a page boundary strictly inside the candidate. Real
/// append-only writes never produce such an overlap, so its presence means
/// the outer candidate is a corrupt (torn) frame whose trailing bytes
/// happen to parse — the candidate is rejected and scanning restarts at
/// the inner frame. With [`BugId::B10UuidCollision`] seeded, the guard is
/// skipped, reproducing the historical bug where the overlapped live chunk
/// was silently dropped by reclamation.
pub fn scan_extent(
    buf: &[u8],
    write_ptr: usize,
    page_size: usize,
    faults: &FaultConfig,
) -> Vec<DecodedFrame> {
    let mut found = Vec::new();
    let mut offset = 0usize;
    let limit = write_ptr.min(buf.len());
    while offset < limit {
        match decode_frame_at(buf, offset, limit) {
            Ok(frame) => {
                if !faults.is(BugId::B10UuidCollision) {
                    // Overlap guard (the fix for issue #10).
                    if let Some(inner) = overlapping_frame(buf, &frame, page_size, limit) {
                        coverage::hit("chunk.scan.overlap_rejected");
                        found.push(inner.clone());
                        offset = inner.end();
                        continue;
                    }
                }
                let mut advance = frame.frame_len();
                if faults.is(BugId::B1ReclamationOffByOne) && frame.frame_len() % page_size == 0 {
                    // BUG B1 (seeded): off-by-one advance for chunks whose
                    // frame is an exact multiple of the page size. The
                    // scanner overshoots by one byte, so a chunk starting
                    // right at the following page boundary is never
                    // decoded (the page-skip recovery jumps past it).
                    advance += 1;
                }
                offset = frame.offset + advance;
                found.push(frame);
            }
            Err(e) => {
                if faults.is(BugId::B10UuidCollision) && e == CodecError::BadChecksum {
                    // BUG B10 (seeded): the historical decoder, when the
                    // trailing UUID mismatched, accepted the frame anyway
                    // if the bytes where the trailer should start look
                    // like a fresh magic header — confusing the *next*
                    // chunk's header (written after a crash recovered the
                    // write pointer into this torn frame's span) with its
                    // own trailer. The accepted phantom frame makes the
                    // scanner skip the live overlapping chunk (§5's
                    // worked example).
                    if let Some(frame) = b10_phantom_accept(buf, offset, limit) {
                        coverage::hit("chunk.scan.b10_phantom_accept");
                        offset = frame.offset + frame.frame_len();
                        found.push(frame);
                        continue;
                    }
                }
                coverage::hit("chunk.scan.skip_page");
                // Skip to the next page boundary and retry.
                let next = (offset / page_size + 1) * page_size;
                offset = next;
            }
        }
    }
    found
}

/// The issue #10 phantom decode: header parses, frame fits below the
/// limit, trailer mismatches, but the trailer position holds magic bytes.
fn b10_phantom_accept(buf: &[u8], offset: usize, limit: usize) -> Option<DecodedFrame> {
    let limit = limit.min(buf.len());
    if offset + 22 > limit || buf[offset..offset + 2] != MAGIC {
        return None;
    }
    let len = u32::from_le_bytes([
        buf[offset + 2],
        buf[offset + 3],
        buf[offset + 4],
        buf[offset + 5],
    ]) as usize;
    if len > MAX_PAYLOAD {
        return None;
    }
    let end = offset + FRAME_OVERHEAD + len;
    if end > limit || end < 16 {
        return None;
    }
    if buf[end - 16..end - 14] != MAGIC {
        return None;
    }
    let mut uuid_bytes = [0u8; 16];
    uuid_bytes.copy_from_slice(&buf[offset + 6..offset + 22]);
    Some(DecodedFrame { offset, payload_len: len, uuid: u128::from_le_bytes(uuid_bytes) })
}

/// Looks for a valid frame starting at a page boundary strictly inside
/// `frame`'s span. Returns the earliest such frame.
fn overlapping_frame(
    buf: &[u8],
    frame: &DecodedFrame,
    page_size: usize,
    limit: usize,
) -> Option<DecodedFrame> {
    let first_boundary = (frame.offset / page_size + 1) * page_size;
    let mut boundary = first_boundary;
    while boundary < frame.end() {
        if let Ok(inner) = decode_frame_at(buf, boundary, limit) {
            if inner.uuid != frame.uuid {
                return Some(inner);
            }
        }
        boundary += page_size;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const PAGE: usize = 128;

    #[test]
    fn roundtrip_single_frame() {
        let frame = encode_frame(b"payload", 0xDEAD_BEEF);
        let decoded = decode_frame_at(&frame, 0, frame.len()).unwrap();
        assert_eq!(decoded.payload_len, 7);
        assert_eq!(decoded.uuid, 0xDEAD_BEEF);
        assert_eq!(decoded.payload(&frame), b"payload");
    }

    #[test]
    fn decode_rejects_bad_magic() {
        let mut frame = encode_frame(b"x", 1);
        frame[0] = b'Z';
        assert_eq!(decode_frame_at(&frame, 0, frame.len()), Err(CodecError::BadMagic));
    }

    #[test]
    fn decode_rejects_mismatched_trailer() {
        let mut frame = encode_frame(b"xyz", 7);
        let end = frame.len();
        frame[end - 1] ^= 0xFF;
        assert_eq!(decode_frame_at(&frame, 0, frame.len()), Err(CodecError::BadChecksum));
    }

    #[test]
    fn decode_respects_write_pointer_limit() {
        let frame = encode_frame(b"hello", 3);
        // Limit cuts the trailer off: must not decode.
        assert!(decode_frame_at(&frame, 0, frame.len() - 1).is_err());
    }

    #[test]
    fn decode_rejects_absurd_length() {
        let mut frame = encode_frame(b"p", 1);
        frame[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_frame_at(&frame, 0, frame.len()).is_err());
    }

    #[test]
    fn scan_finds_back_to_back_frames() {
        let mut buf = encode_frame(b"first", 1);
        buf.extend_from_slice(&encode_frame(b"second", 2));
        let found = scan_extent(&buf, buf.len(), PAGE, &FaultConfig::none());
        assert_eq!(found.len(), 2);
        assert_eq!(found[0].uuid, 1);
        assert_eq!(found[1].uuid, 2);
        assert_eq!(found[1].offset, found[0].end());
    }

    #[test]
    fn scan_skips_torn_frame_to_next_page() {
        // A torn frame at offset 0 (trailer corrupted), then a good frame
        // at the next page boundary.
        let mut buf = vec![0u8; 3 * PAGE];
        let torn = encode_frame(&[7u8; 20], 11);
        buf[..torn.len()].copy_from_slice(&torn);
        buf[torn.len() - 1] ^= 0xFF; // corrupt the trailer
        let good = encode_frame(b"live", 22);
        buf[PAGE..PAGE + good.len()].copy_from_slice(&good);
        let found = scan_extent(&buf, buf.len(), PAGE, &FaultConfig::none());
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].uuid, 22);
        assert_eq!(found[0].offset, PAGE);
    }

    /// Reconstructs the §5 / issue #10 scenario: a torn first frame whose
    /// length spills onto page 1, a crash that loses page 1, and a second
    /// live frame written from page 1. The torn frame *appears* valid
    /// because the second frame's bytes happen to sit exactly where the
    /// torn frame's trailer should be (the "UUID collision").
    fn uuid_collision_buf() -> (Vec<u8>, u128) {
        let mut buf = vec![0u8; 4 * PAGE];
        // The live second chunk, written from page 1 after the crash.
        let live_uuid: u128 = 0x11FE;
        let live = encode_frame(&[9u8; 30], live_uuid);
        buf[PAGE..PAGE + live.len()].copy_from_slice(&live);
        // The torn first chunk: header on page 0 claiming a length whose
        // trailer lands exactly on bytes inside the live chunk that equal
        // the torn chunk's UUID (we *choose* the UUID to collide, just as
        // the historical bug required a specific random UUID).
        // Pick the trailer position: start of live payload region.
        let trailer_pos = PAGE + 22; // live frame payload start
        let mut uuid_bytes = [0u8; 16];
        uuid_bytes.copy_from_slice(&buf[trailer_pos..trailer_pos + 16]);
        let colliding_uuid = u128::from_le_bytes(uuid_bytes);
        let payload_len = trailer_pos + 16 - FRAME_OVERHEAD; // frame end = trailer_pos+16
        buf[0..2].copy_from_slice(&MAGIC);
        buf[2..6].copy_from_slice(&(payload_len as u32).to_le_bytes());
        buf[6..22].copy_from_slice(&colliding_uuid.to_le_bytes());
        // Page 0's payload bytes are the (lost) torn chunk's head; leave
        // arbitrary.
        (buf, live_uuid)
    }

    #[test]
    fn fixed_scan_survives_uuid_collision() {
        let (buf, live_uuid) = uuid_collision_buf();
        let found = scan_extent(&buf, buf.len(), PAGE, &FaultConfig::none());
        // The fixed scanner must find the live chunk.
        assert!(
            found.iter().any(|f| f.uuid == live_uuid),
            "fixed scan lost the live chunk: {found:?}"
        );
    }

    #[test]
    fn b10_seeded_scan_drops_overlapped_live_chunk() {
        let (buf, live_uuid) = uuid_collision_buf();
        let faults = FaultConfig::seed(BugId::B10UuidCollision);
        let found = scan_extent(&buf, buf.len(), PAGE, &faults);
        // The buggy scanner accepts the torn frame and skips the live one.
        assert!(
            !found.iter().any(|f| f.uuid == live_uuid),
            "expected the buggy scan to lose the live chunk: {found:?}"
        );
    }

    #[test]
    fn b1_seeded_off_by_one_loses_following_chunks() {
        // First frame exactly one page long (payload = PAGE - overhead).
        let mut buf = encode_frame(&[1u8; PAGE - FRAME_OVERHEAD], 5);
        assert_eq!(buf.len(), PAGE);
        buf.extend_from_slice(&encode_frame(b"second", 6));
        let fixed = scan_extent(&buf, buf.len(), PAGE, &FaultConfig::none());
        assert_eq!(fixed.len(), 2);
        let buggy =
            scan_extent(&buf, buf.len(), PAGE, &FaultConfig::seed(BugId::B1ReclamationOffByOne));
        assert!(buggy.len() < 2, "off-by-one should corrupt the scan: {buggy:?}");
    }

    #[test]
    fn scan_of_garbage_never_panics_and_finds_nothing() {
        let buf: Vec<u8> = (0..1024).map(|i| (i * 31 % 251) as u8).collect();
        let found = scan_extent(&buf, buf.len(), PAGE, &FaultConfig::none());
        assert!(found.is_empty());
    }

    #[test]
    fn empty_and_zero_regions_scan_clean() {
        assert!(scan_extent(&[], 0, PAGE, &FaultConfig::none()).is_empty());
        let zeros = vec![0u8; 5 * PAGE];
        assert!(scan_extent(&zeros, zeros.len(), PAGE, &FaultConfig::none()).is_empty());
    }
}
