//! The chunk store: PUT/GET over locators, extent allocation, and the
//! chunk-reclamation (GC) background task (§2.1 of the paper).
//!
//! All persistent data in ShardStore is stored in chunks — shard data and
//! the LSM tree itself. The chunk store arranges chunks onto extents with
//! `put(data) → locator` / `get(locator) → data`, and recovers free space
//! with *reclamation*: scan an extent, reverse-look-up each chunk in the
//! index (via the [`Referencer`] callback), evacuate live chunks to a new
//! extent, update their pointers, and only then reset the extent — with
//! the reset's superblock update depending on the evacuations and index
//! updates, so no crash state loses data (§2.1, §5).
//!
//! Concurrency: a put can *pin* its target extent ([`PutGuard`]) until the
//! caller has registered the chunk in its index; reclamation skips pinned
//! extents. Skipping that pin is exactly the issue #11 / #14 bug family
//! ([`BugId::B11LocatorRace`] seeds it at this layer).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use shardstore_conc::sync::Mutex;
use shardstore_dependency::Dependency;
use shardstore_faults::{coverage, BugId, FaultConfig};
use shardstore_obs::TraceEvent;
use shardstore_superblock::{ExtentError, ExtentManager, Owner};
use shardstore_vdisk::{ExtentId, IoError};

use crate::frame::{encode_frame, scan_extent, FRAME_OVERHEAD};

/// Which logical stream a chunk belongs to; each stream appends to its own
/// open extent so that data with different lifetimes does not mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Stream {
    /// Shard data chunks.
    Data,
    /// Chunks backing the LSM tree.
    Lsm,
    /// LSM metadata records.
    Meta,
}

impl Stream {
    /// The extent [`Owner`] for this stream.
    pub fn owner(self) -> Owner {
        match self {
            Stream::Data => Owner::Data,
            Stream::Lsm => Owner::LsmData,
            Stream::Meta => Owner::Metadata,
        }
    }
}

/// Opaque pointer to a stored chunk.
///
/// Locators are returned by [`ChunkStore::put`] and are unique per chunk
/// (the UUID also frames the chunk on disk). Other components treat them
/// as opaque — the paper's issue #15 was a reference model violating
/// exactly that uniqueness assumption.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Locator {
    /// Extent holding the chunk.
    pub extent: ExtentId,
    /// Byte offset of the frame within the extent.
    pub offset: u32,
    /// Payload length in bytes.
    pub len: u32,
    /// The chunk's framing UUID.
    pub uuid: u128,
}

impl Locator {
    /// Stable hash of the chunk's *position* (extent + offset) — the same
    /// identity the buffer cache keys entries by, so all locators naming
    /// one on-disk position map to one cache segment regardless of UUID.
    pub fn position_hash(&self) -> u64 {
        // splitmix64 finalizer over the packed position; good avalanche
        // for sequential extents/offsets, no allocation.
        let mut x = ((self.extent.0 as u64) << 32) | self.offset as u64;
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

impl fmt::Display for Locator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk@{}+{}:{}", self.extent.0, self.offset, self.len)
    }
}

/// Chunk store errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkError {
    /// Underlying extent/disk error.
    Extent(ExtentError),
    /// The locator does not name a live chunk (deleted, reclaimed, or
    /// never persisted).
    NotFound(Locator),
    /// The on-disk frame failed validation — corruption was *detected*
    /// rather than wrong data returned (the §4.4 guarantee).
    Corrupt(Locator),
    /// No extent has room for a chunk of this size.
    NoSpace {
        /// The payload size that could not be placed.
        requested: usize,
    },
    /// The chunk lives on a quarantined extent and has no surviving
    /// replica to serve it from. The caller can distinguish this from
    /// `NotFound`: the data existed and may still be recovered by
    /// re-replication from another node (out of scope for a single
    /// storage node), but this node cannot return it.
    Degraded(Locator),
}

impl fmt::Display for ChunkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChunkError::Extent(e) => write!(f, "extent error: {e}"),
            ChunkError::NotFound(l) => write!(f, "{l} not found"),
            ChunkError::Corrupt(l) => write!(f, "{l} failed validation"),
            ChunkError::NoSpace { requested } => write!(f, "no space for {requested}-byte chunk"),
            ChunkError::Degraded(l) => write!(f, "{l} is on a quarantined extent (degraded)"),
        }
    }
}

impl ChunkError {
    /// True if this error reports data made unreachable by an extent
    /// quarantine (degraded mode), as opposed to data that never existed
    /// or failed validation.
    pub fn is_degraded(&self) -> bool {
        matches!(
            self,
            ChunkError::Degraded(_) | ChunkError::Extent(ExtentError::Quarantined { .. })
        )
    }
}

impl std::error::Error for ChunkError {}

impl From<ExtentError> for ChunkError {
    fn from(e: ExtentError) -> Self {
        ChunkError::Extent(e)
    }
}

impl From<IoError> for ChunkError {
    fn from(e: IoError) -> Self {
        ChunkError::Extent(ExtentError::Io(e))
    }
}

/// Reverse-lookup callback used by reclamation (§2.1): the index (or the
/// LSM metadata structure, for LSM-owned extents) decides which chunks are
/// still referenced and rewires pointers for evacuated chunks.
pub trait Referencer {
    /// Returns true if the chunk at `locator` is still referenced.
    fn is_live(&self, locator: &Locator) -> bool;

    /// Informs the referencer that a live chunk moved from `old` to
    /// `new`; `copy_dep` is the data dependency of the evacuated copy.
    /// Returns the dependency of the pointer update (which must itself
    /// depend on `copy_dep` — pointers must never persist before the data
    /// they point to).
    fn relocated(&self, old: &Locator, new: &Locator, copy_dep: &Dependency) -> Dependency;

    /// Returns a dependency that persists only once the referencer's
    /// *current* reference state is durable. Reclamation joins this into
    /// the extent-reset barrier: a chunk that is unreferenced *now* may
    /// still be referenced by an older persisted index state, and
    /// resetting its extent before the current state persists would let a
    /// crash recover to an index with dangling pointers. For the LSM
    /// index this triggers a flush and returns the resulting metadata
    /// record's dependency. Returning `Ok(None)` means the referencer's
    /// state is purely in-memory and imposes no ordering (test doubles).
    ///
    /// An `Err` means the current reference state *cannot* be made
    /// durable right now (e.g. no space left for the barrier record).
    /// Reclamation must then abort the pass without resetting the
    /// extent: an older persisted index state may still reference the
    /// chunks about to be dropped, and resetting anyway would let a
    /// crash recover to an index full of dangling pointers.
    fn quiesce(&self) -> Result<Option<Dependency>, ChunkError>;
}

/// Outcome of one quarantined-extent evacuation
/// ([`ChunkStore::evacuate_quarantined`]).
#[derive(Debug, Clone)]
pub struct EvacuationReport {
    /// The quarantined extent.
    pub extent: ExtentId,
    /// Live chunks re-homed to fresh extents (from the cache copy).
    pub evacuated: usize,
    /// Live chunks with no surviving local copy; reads stay degraded.
    pub stranded: usize,
    /// Unreferenced chunks dropped from the registry.
    pub dropped: usize,
    /// Persists once every evacuated copy and pointer update has.
    pub dep: Dependency,
}

/// Outcome of one reclamation pass.
#[derive(Debug, Clone)]
pub struct ReclaimReport {
    /// The reclaimed extent.
    pub extent: ExtentId,
    /// Chunks evacuated (live).
    pub evacuated: usize,
    /// Chunks dropped (unreferenced).
    pub dropped: usize,
    /// Dependency of the extent reset; persists only after every
    /// evacuation and pointer update has.
    pub reset_dep: Dependency,
}

/// Cumulative chunk-store statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkStats {
    /// Successful puts.
    pub puts: u64,
    /// Successful gets.
    pub gets: u64,
    /// Reclamation passes completed.
    pub reclaims: u64,
    /// Chunks evacuated by reclamation.
    pub evacuated: u64,
    /// Chunks dropped by reclamation.
    pub dropped: u64,
}

#[derive(Debug, Clone, Copy)]
struct ChunkMeta {
    len: u32,
    uuid: u128,
    /// Deletion hint for victim selection (not authoritative liveness —
    /// reclamation always reverse-looks-up through the [`Referencer`]).
    dead_hint: bool,
}

#[derive(Debug)]
struct CsState {
    /// Per-extent chunk registry: extent → offset → metadata.
    registry: BTreeMap<u32, BTreeMap<u32, ChunkMeta>>,
    /// Current append target per stream.
    open: BTreeMap<Stream, ExtentId>,
    /// Extents pinned by in-flight puts; reclamation must skip them.
    pinned: BTreeMap<u32, usize>,
    /// Extents currently being reclaimed; puts must not target them.
    reclaiming: std::collections::BTreeSet<u32>,
    uuid_rng: StdRng,
    forced_uuid: Option<u128>,
    stats: ChunkStats,
}

/// The chunk store. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct ChunkStore {
    core: Arc<CsCore>,
}

struct CsCore {
    em: ExtentManager,
    faults: FaultConfig,
    state: Mutex<CsState>,
}

impl fmt::Debug for ChunkStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.core.state.lock();
        f.debug_struct("ChunkStore").field("extents", &st.registry.len()).finish()
    }
}

/// Result of a successful [`ChunkStore::put`].
#[derive(Debug)]
pub struct PutOutcome {
    /// The stored chunk's locator.
    pub locator: Locator,
    /// Dependency of the chunk's raw data write only — for building
    /// ordering barriers (see [`shardstore_superblock::AppendOutcome`]).
    pub data_dep: Dependency,
    /// Full dependency: data plus its superblock pointer coverage.
    pub dep: Dependency,
    /// Extent pin; hold until the chunk is referenced by an index.
    pub guard: PutGuard,
}

impl PutOutcome {
    /// Destructures into the common `(locator, dep, guard)` triple.
    pub fn into_parts(self) -> (Locator, Dependency, PutGuard) {
        (self.locator, self.dep, self.guard)
    }
}

/// RAII pin on an extent: while alive, reclamation will not touch the
/// extent. Held by `put` callers until the chunk is referenced by an
/// index (the fix for issues #11/#14).
#[derive(Debug)]
pub struct PutGuard {
    store: ChunkStore,
    extent: ExtentId,
}

impl Drop for PutGuard {
    fn drop(&mut self) {
        let mut st = self.store.core.state.lock();
        if let Some(n) = st.pinned.get_mut(&self.extent.0) {
            *n -= 1;
            if *n == 0 {
                st.pinned.remove(&self.extent.0);
            }
        }
    }
}

impl ChunkStore {
    /// Creates a chunk store over an extent manager. `uuid_seed` makes
    /// chunk UUIDs deterministic for reproducible tests (§4.3's
    /// determinism-by-design principle).
    pub fn new(em: ExtentManager, faults: FaultConfig, uuid_seed: u64) -> Self {
        Self {
            core: Arc::new(CsCore {
                em,
                faults,
                state: Mutex::new(CsState {
                    registry: BTreeMap::new(),
                    open: BTreeMap::new(),
                    pinned: BTreeMap::new(),
                    reclaiming: std::collections::BTreeSet::new(),
                    uuid_rng: StdRng::seed_from_u64(uuid_seed),
                    forced_uuid: None,
                    stats: ChunkStats::default(),
                }),
            }),
        }
    }

    /// Rebuilds the chunk registry after a reboot by scanning every owned
    /// extent up to its recovered soft write pointer.
    pub fn recover(em: ExtentManager, faults: FaultConfig, uuid_seed: u64) -> Result<Self, ChunkError> {
        let store = Self::new(em, faults, uuid_seed);
        let page_size = store.core.em.scheduler().disk().geometry().page_size;
        let extent_size = store.core.em.extent_size();
        for owner in [Owner::Data, Owner::LsmData, Owner::Metadata] {
            for extent in store.core.em.extents_owned_by(owner) {
                if store.core.em.is_quarantined(extent) {
                    coverage::hit("chunk.recover.skip_quarantined");
                    continue;
                }
                // Chunks are trusted — and registered — only below the
                // *persisted* write pointer. Bytes beyond it are either
                // torn residue of unacknowledged appends or dead data
                // from a reset whose space has not been reused; neither
                // may be resurrected.
                let sb_ptr = store.core.em.write_pointer(extent);
                let frames = if sb_ptr > 0 {
                    match store.read_with_retry(extent, 0, sb_ptr) {
                        Ok(buf) => {
                            coverage::hit("chunk.recover.scan_extent");
                            scan_extent(&buf, sb_ptr, page_size, &store.core.faults)
                        }
                        Err(ExtentError::Io(IoError::Failed { .. }))
                        | Err(ExtentError::Quarantined { .. }) => {
                            // Permanently dead extent: quarantine it and
                            // recover everything else. Its chunks read as
                            // Degraded, never as wrong data.
                            store.core.em.quarantine(extent);
                            coverage::hit("chunk.recover.quarantined");
                            continue;
                        }
                        Err(e) => return Err(e.into()),
                    }
                } else {
                    Vec::new()
                };
                let last_valid_end = frames.last().map(|f| f.end()).unwrap_or(0);
                {
                    let mut st = store.core.state.lock();
                    let per = st.registry.entry(extent.0).or_default();
                    for f in frames {
                        per.insert(
                            f.offset as u32,
                            ChunkMeta { len: f.payload_len as u32, uuid: f.uuid, dead_hint: false },
                        );
                    }
                }
                // Position the pointer for future appends: past the last
                // valid chunk AND past any physical garbage, rounded up
                // to a page boundary. Garbage below the pointer arises
                // from torn pages of a covered-but-partially-lost append;
                // garbage above it from appends whose pointer update the
                // crash dropped, or from an earlier reset. Appending into
                // the middle of such residue would let a later scan
                // misparse the mix — the §5 scenario, where "a second
                // chunk is written to the same extent, starting from
                // page 1".
                let raw = {
                    let disk = store.core.em.scheduler().disk();
                    let mut attempts = 0u32;
                    loop {
                        match disk.read(extent, 0, extent_size) {
                            Err(IoError::Injected { .. }) if attempts < 3 => attempts += 1,
                            other => break other,
                        }
                    }
                };
                let raw = match raw {
                    Ok(r) => r,
                    Err(IoError::Failed { .. }) => {
                        store.core.em.quarantine(extent);
                        coverage::hit("chunk.recover.quarantined");
                        continue;
                    }
                    Err(e) => return Err(e.into()),
                };
                let garbage_end =
                    raw.iter().rposition(|b| *b != 0).map(|i| i + 1).unwrap_or(0);
                let new_ptr = if garbage_end > last_valid_end {
                    (garbage_end.div_ceil(page_size) * page_size).min(extent_size)
                } else {
                    last_valid_end
                };
                if new_ptr > sb_ptr {
                    store.core.em.extend_pointer_for_recovery(extent, new_ptr);
                    coverage::hit("chunk.recover.pointer_extended");
                } else if new_ptr < sb_ptr {
                    store.core.em.trim_pointer_for_recovery(extent, new_ptr);
                    coverage::hit("chunk.recover.torn_tail_trimmed");
                }
            }
        }
        Ok(store)
    }

    /// The underlying extent manager.
    pub fn extent_manager(&self) -> &ExtentManager {
        &self.core.em
    }

    /// Reads through the extent manager with a bounded retry of transient
    /// (injected) failures, mirroring the scheduler's write-retry budget.
    fn read_with_retry(
        &self,
        extent: ExtentId,
        offset: usize,
        len: usize,
    ) -> Result<Vec<u8>, ExtentError> {
        let mut attempts = 0u32;
        loop {
            match self.core.em.read(extent, offset, len) {
                Err(ExtentError::Io(IoError::Injected { .. })) if attempts < 3 => {
                    attempts += 1;
                    coverage::hit("chunk.read.retried");
                }
                other => return other,
            }
        }
    }

    /// Forces the next generated UUID (test support for the §5 collision
    /// scenario).
    #[doc(hidden)]
    pub fn force_next_uuid(&self, uuid: u128) {
        self.core.state.lock().forced_uuid = Some(uuid);
    }

    fn next_uuid(st: &mut CsState) -> u128 {
        if let Some(u) = st.forced_uuid.take() {
            return u;
        }
        st.uuid_rng.gen()
    }

    /// Picks (or allocates) the open extent for `stream` with room for
    /// `frame_len` bytes.
    fn target_extent(&self, stream: Stream, frame_len: usize) -> Result<ExtentId, ChunkError> {
        let size = self.core.em.extent_size();
        if frame_len > size {
            return Err(ChunkError::NoSpace { requested: frame_len });
        }
        // Fast path: current open extent fits (and is not mid-reclaim or
        // quarantined).
        {
            let st = self.core.state.lock();
            if let Some(ext) = st.open.get(&stream).copied() {
                if !st.reclaiming.contains(&ext.0)
                    && !self.core.em.is_quarantined(ext)
                    && self.core.em.write_pointer(ext) + frame_len <= size
                {
                    return Ok(ext);
                }
            }
        }
        coverage::hit("chunk.put.open_new_extent");
        // Try an existing partially-filled extent of this stream, else
        // allocate a fresh one.
        for ext in self.core.em.extents_owned_by(stream.owner()) {
            if self.core.state.lock().reclaiming.contains(&ext.0)
                || self.core.em.is_quarantined(ext)
            {
                continue;
            }
            if self.core.em.write_pointer(ext) + frame_len <= size {
                self.core.state.lock().open.insert(stream, ext);
                return Ok(ext);
            }
        }
        match self.core.em.allocate(stream.owner()) {
            Ok((ext, _dep)) => {
                self.core.state.lock().open.insert(stream, ext);
                Ok(ext)
            }
            Err(ExtentError::NoFreeExtent) => Err(ChunkError::NoSpace { requested: frame_len }),
            Err(e) => Err(e.into()),
        }
    }

    /// Stores a chunk. The write will not be issued until `dep` persists;
    /// the returned dependency persists once the chunk and its write
    /// pointer have. The returned [`PutGuard`] pins the target extent
    /// against reclamation; hold it until the chunk is referenced by an
    /// index.
    pub fn put(
        &self,
        stream: Stream,
        payload: &[u8],
        dep: &Dependency,
    ) -> Result<PutOutcome, ChunkError> {
        let frame_len = payload.len() + FRAME_OVERHEAD;
        let extent = loop {
            let candidate = self.target_extent(stream, frame_len)?;
            let mut st = self.core.state.lock();
            // Re-validate under the pin lock: a reclamation may have
            // claimed the candidate between target selection and here
            // (it checks pins and marks `reclaiming` atomically, so after
            // pinning we must observe its mark if it got in first).
            if st.reclaiming.contains(&candidate.0) {
                drop(st);
                shardstore_conc::yield_now();
                continue;
            }
            if !self.core.faults.is(BugId::B11LocatorRace) {
                *st.pinned.entry(candidate.0).or_insert(0) += 1;
            }
            break candidate;
        };
        let mut st = self.core.state.lock();
        let uuid = Self::next_uuid(&mut st);
        drop(st);
        let frame = encode_frame(payload, uuid);
        let append = self.core.em.append(extent, &frame, dep);
        let outcome = match append {
            Ok(v) => v,
            Err(e) => {
                if !self.core.faults.is(BugId::B11LocatorRace) {
                    let mut st = self.core.state.lock();
                    if let Some(n) = st.pinned.get_mut(&extent.0) {
                        *n -= 1;
                        if *n == 0 {
                            st.pinned.remove(&extent.0);
                        }
                    }
                }
                match e {
                    ExtentError::ExtentFull { .. } => {
                        // Lost a race for the open extent; retry once
                        // with a fresh target.
                        coverage::hit("chunk.put.retry_full");
                        return self.put(stream, payload, dep);
                    }
                    ExtentError::Quarantined { .. } => {
                        // The open extent died under us; re-route to a
                        // fresh one (target selection skips quarantined
                        // extents, so this terminates).
                        coverage::hit("chunk.put.rerouted_quarantined");
                        self.core.state.lock().open.retain(|_, x| *x != extent);
                        return self.put(stream, payload, dep);
                    }
                    _ => {}
                }
                return Err(e.into());
            }
        };
        let locator =
            Locator { extent, offset: outcome.offset as u32, len: payload.len() as u32, uuid };
        let mut st = self.core.state.lock();
        st.registry.entry(extent.0).or_default().insert(
            locator.offset,
            ChunkMeta { len: locator.len, uuid, dead_hint: false },
        );
        st.stats.puts += 1;
        if self.core.faults.is(BugId::B11LocatorRace) {
            // BUG B11 (seeded): no pin is taken, so between this put
            // returning and the caller registering the locator in its
            // index, a concurrent reclamation can scan the extent, find
            // the chunk unreferenced, and reset the extent — invalidating
            // the locator.
            drop(st);
            return Ok(PutOutcome {
                locator,
                data_dep: outcome.data,
                dep: outcome.dep,
                guard: PutGuard { store: self.clone(), extent: ExtentId(u32::MAX) },
            });
        }
        drop(st);
        Ok(PutOutcome {
            locator,
            data_dep: outcome.data,
            dep: outcome.dep,
            guard: PutGuard { store: self.clone(), extent },
        })
    }

    /// Stores several chunks as one group commit. The whole batch targets
    /// a single extent and shares one superblock pointer update (see
    /// [`ExtentManager::append_batch`]), so the scheduler can merge the
    /// contiguous frames into one disk IO. Each element still gets its own
    /// locator, dependencies, and [`PutGuard`], exactly as if stored by
    /// [`ChunkStore::put`]. Batches that cannot fit one extent (or lose a
    /// space race) degrade to per-chunk puts — the batch is an
    /// optimisation, never a semantic change.
    pub fn put_batch(
        &self,
        stream: Stream,
        payloads: &[&[u8]],
        dep: &Dependency,
    ) -> Result<Vec<PutOutcome>, ChunkError> {
        match payloads {
            [] => return Ok(Vec::new()),
            [single] => return Ok(vec![self.put(stream, single, dep)?]),
            _ => {}
        }
        let total: usize = payloads.iter().map(|p| p.len() + FRAME_OVERHEAD).sum();
        if total > self.core.em.extent_size() {
            // Too big to ever group in one extent; store individually.
            coverage::hit("chunk.put_batch.split_oversize");
            return payloads.iter().map(|p| self.put(stream, p, dep)).collect();
        }
        let pinning = !self.core.faults.is(BugId::B11LocatorRace);
        let extent = loop {
            let candidate = self.target_extent(stream, total)?;
            let mut st = self.core.state.lock();
            if st.reclaiming.contains(&candidate.0) {
                drop(st);
                shardstore_conc::yield_now();
                continue;
            }
            if pinning {
                // One pin per outcome: every returned PutGuard releases
                // its own, matching the single-put contract.
                *st.pinned.entry(candidate.0).or_insert(0) += payloads.len();
            }
            break candidate;
        };
        let mut st = self.core.state.lock();
        let uuids: Vec<u128> = payloads.iter().map(|_| Self::next_uuid(&mut st)).collect();
        drop(st);
        let frames: Vec<Vec<u8>> =
            payloads.iter().zip(&uuids).map(|(p, u)| encode_frame(p, *u)).collect();
        let frame_refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
        let outcomes = match self.core.em.append_batch(extent, &frame_refs, dep) {
            Ok(v) => v,
            Err(e) => {
                if pinning {
                    let mut st = self.core.state.lock();
                    if let Some(n) = st.pinned.get_mut(&extent.0) {
                        *n -= payloads.len();
                        if *n == 0 {
                            st.pinned.remove(&extent.0);
                        }
                    }
                }
                match e {
                    ExtentError::ExtentFull { .. } => {
                        // Lost a space race for the open extent; per-chunk
                        // puts re-target (and may spread across extents).
                        coverage::hit("chunk.put_batch.retry_full");
                        return payloads.iter().map(|p| self.put(stream, p, dep)).collect();
                    }
                    ExtentError::Quarantined { .. } => {
                        // Open extent died; re-route each chunk to fresh
                        // extents individually.
                        coverage::hit("chunk.put_batch.rerouted_quarantined");
                        self.core.state.lock().open.retain(|_, x| *x != extent);
                        return payloads.iter().map(|p| self.put(stream, p, dep)).collect();
                    }
                    _ => {}
                }
                return Err(e.into());
            }
        };
        coverage::hit("chunk.put_batch.grouped");
        let guard_extent = if pinning { extent } else { ExtentId(u32::MAX) };
        let mut st = self.core.state.lock();
        let mut out = Vec::with_capacity(payloads.len());
        for ((payload, uuid), ao) in payloads.iter().zip(&uuids).zip(outcomes) {
            let locator = Locator {
                extent,
                offset: ao.offset as u32,
                len: payload.len() as u32,
                uuid: *uuid,
            };
            st.registry.entry(extent.0).or_default().insert(
                locator.offset,
                ChunkMeta { len: locator.len, uuid: *uuid, dead_hint: false },
            );
            st.stats.puts += 1;
            out.push(PutOutcome {
                locator,
                data_dep: ao.data,
                dep: ao.dep,
                guard: PutGuard { store: self.clone(), extent: guard_extent },
            });
        }
        drop(st);
        Ok(out)
    }

    /// Reads a chunk back, validating its frame. Corruption is detected
    /// and reported as [`ChunkError::Corrupt`] — never returned as data.
    pub fn get(&self, locator: &Locator) -> Result<Vec<u8>, ChunkError> {
        {
            let st = self.core.state.lock();
            let known = st
                .registry
                .get(&locator.extent.0)
                .and_then(|per| per.get(&locator.offset))
                .map(|m| m.uuid == locator.uuid && m.len == locator.len)
                .unwrap_or(false);
            if !known {
                // A quarantined extent cannot be scanned at recovery, so
                // its chunks are absent from the registry; a miss there is
                // "unreadable", not "never existed".
                if self.core.em.is_quarantined(locator.extent) {
                    coverage::hit("chunk.get.degraded_unregistered");
                    return Err(ChunkError::Degraded(*locator));
                }
                coverage::hit("chunk.get.not_found");
                return Err(ChunkError::NotFound(*locator));
            }
        }
        let frame_len = locator.len as usize + FRAME_OVERHEAD;
        let bytes = match self.read_with_retry(locator.extent, locator.offset as usize, frame_len)
        {
            Ok(b) => b,
            Err(ExtentError::Quarantined { .. }) => {
                // The chunk is registered but its extent is dead: the
                // caller gets a *distinguishable* degraded error, never
                // NotFound and never wrong bytes.
                coverage::hit("chunk.get.degraded");
                return Err(ChunkError::Degraded(*locator));
            }
            Err(ExtentError::Io(IoError::Failed { extent })) => {
                // First observation of a permanent fault on a read path:
                // quarantine so writers re-route, then report degraded.
                self.core.em.quarantine(extent);
                coverage::hit("chunk.get.degraded");
                return Err(ChunkError::Degraded(*locator));
            }
            Err(e) => return Err(e.into()),
        };
        let decoded = crate::frame::decode_frame_at(&bytes, 0, bytes.len())
            .map_err(|_| ChunkError::Corrupt(*locator))?;
        if decoded.uuid != locator.uuid || decoded.payload_len != locator.len as usize {
            coverage::hit("chunk.get.corrupt");
            return Err(ChunkError::Corrupt(*locator));
        }
        self.core.state.lock().stats.gets += 1;
        Ok(decoded.payload(&bytes).to_vec())
    }

    /// Marks a chunk as probably-dead (a victim-selection hint; liveness
    /// is always re-established by the [`Referencer`] during reclamation).
    pub fn mark_dead(&self, locator: &Locator) {
        let mut st = self.core.state.lock();
        if let Some(meta) =
            st.registry.get_mut(&locator.extent.0).and_then(|per| per.get_mut(&locator.offset))
        {
            if meta.uuid == locator.uuid {
                meta.dead_hint = true;
            }
        }
    }

    /// Picks the best reclamation victim for a stream: the non-pinned
    /// extent with the most dead-hinted bytes (ties broken by lowest id).
    /// Returns `None` if nothing is worth reclaiming. The stream's open
    /// extent is a legitimate victim: reclamation marks it and concurrent
    /// puts re-target atomically.
    pub fn select_victim(&self, stream: Stream) -> Option<ExtentId> {
        let st = self.core.state.lock();
        let _ = stream;
        let mut best: Option<(u64, ExtentId)> = None;
        for ext in self.core.em.extents_owned_by(stream.owner()) {
            if st.pinned.contains_key(&ext.0) || st.reclaiming.contains(&ext.0) {
                continue;
            }
            let dead: u64 = st
                .registry
                .get(&ext.0)
                .map(|per| {
                    per.values()
                        .filter(|m| m.dead_hint)
                        .map(|m| m.len as u64 + FRAME_OVERHEAD as u64)
                        .sum()
                })
                .unwrap_or(0);
            if dead > 0 && best.map(|(b, _)| dead > b).unwrap_or(true) {
                best = Some((dead, ext));
            }
        }
        best.map(|(_, e)| e)
    }

    /// Reclaims an extent (§2.1): scans it, evacuates chunks the
    /// `referencer` still references, drops the rest, and resets the
    /// extent with a dependency on all evacuations and pointer updates.
    ///
    /// Returns `Ok(None)` if the extent is pinned or open (the fixed
    /// behaviour; with [`BugId::B11LocatorRace`] seeded pins do not exist,
    /// making this the race window).
    pub fn reclaim(
        &self,
        extent: ExtentId,
        stream: Stream,
        referencer: &dyn Referencer,
    ) -> Result<Option<ReclaimReport>, ChunkError> {
        if self.core.em.is_quarantined(extent) {
            // A dead extent cannot be scanned or reset; evacuation (and
            // eventual re-replication) is handled by
            // [`ChunkStore::evacuate_quarantined`], not GC.
            coverage::hit("chunk.reclaim.skipped_quarantined");
            return Ok(None);
        }
        {
            let mut st = self.core.state.lock();
            if st.pinned.contains_key(&extent.0) {
                coverage::hit("chunk.reclaim.skipped_pinned");
                return Ok(None);
            }
            // Exclude the victim from put targets: evacuations must never
            // land on the extent about to be reset.
            st.reclaiming.insert(extent.0);
            st.open.retain(|_, e| *e != extent);
        }
        let result = self.reclaim_inner(extent, stream, referencer);
        self.core.state.lock().reclaiming.remove(&extent.0);
        result
    }

    fn reclaim_inner(
        &self,
        extent: ExtentId,
        stream: Stream,
        referencer: &dyn Referencer,
    ) -> Result<Option<ReclaimReport>, ChunkError> {
        let write_ptr = self.core.em.write_pointer(extent);
        let page_size = self.core.em.scheduler().disk().geometry().page_size;
        let scan_result = if write_ptr == 0 {
            Vec::new()
        } else {
            match self.core.em.read(extent, 0, write_ptr) {
                Ok(buf) => scan_extent(&buf, write_ptr, page_size, &self.core.faults),
                Err(e) => {
                    if self.core.faults.is(BugId::B5ReclamationTransientError) {
                        // BUG B5 (seeded): a transient read error is
                        // treated as "extent empty", so every chunk on it
                        // is forgotten and the reset drops live data.
                        coverage::hit("chunk.reclaim.b5_swallowed_error");
                        Vec::new()
                    } else {
                        // Fixed: abort the pass; the extent is retried
                        // later.
                        coverage::hit("chunk.reclaim.aborted_io_error");
                        return Err(e.into());
                    }
                }
            }
        };
        let mut evacuated = 0usize;
        let mut dropped = 0usize;
        let mut deps: Vec<Dependency> = Vec::new();
        let mut guards: Vec<PutGuard> = Vec::new();
        for frame in &scan_result {
            let old = Locator {
                extent,
                offset: frame.offset as u32,
                len: frame.payload_len as u32,
                uuid: frame.uuid,
            };
            if referencer.is_live(&old) {
                coverage::hit("chunk.reclaim.evacuate");
                // Read through the registry-validating path.
                let payload = self.get(&old)?;
                let none = self.core.em.scheduler().none();
                let out = self.put(stream, &payload, &none)?;
                if std::env::var_os("GC_TRACE").is_some() {
                    eprintln!("GC: evacuate {} -> {}", old, out.locator);
                }
                let ptr_dep = referencer.relocated(&old, &out.locator, &out.data_dep);
                {
                    let obs = self.core.em.scheduler().obs();
                    obs.registry().counter("chunk.relocations").inc();
                    obs.trace().event(TraceEvent::Relocation {
                        from_extent: old.extent.0,
                        to_extent: out.locator.extent.0,
                    });
                }
                deps.push(out.data_dep.clone());
                deps.push(ptr_dep);
                guards.push(out.guard);
                evacuated += 1;
            } else {
                coverage::hit("chunk.reclaim.drop");
                dropped += 1;
            }
        }
        if std::env::var_os("GC_TRACE").is_some() {
            eprintln!("GC: reset extent {} (evacuated {evacuated}, dropped {dropped})", extent.0);
        }
        // Reset: pointer to zero, dependent on every evacuation + pointer
        // update, plus the referencer's quiescence point (so a crash can
        // never recover to an index state referencing dropped chunks).
        // If the barrier cannot be produced at all, abort the pass before
        // the reset: the evacuated copies stay live and the old frames
        // become dead, so a later pass simply retries.
        match referencer.quiesce() {
            Ok(Some(q)) => deps.push(q),
            Ok(None) => {}
            Err(e) => {
                coverage::hit("chunk.reclaim.aborted_barrier");
                return Err(e);
            }
        }
        let barrier = self.core.em.scheduler().join(&deps);
        let reset_dep = self.core.em.reset(extent, &barrier);
        {
            let mut st = self.core.state.lock();
            st.registry.remove(&extent.0);
            // The reclaimed extent is no longer anyone's open extent.
            st.open.retain(|_, e| *e != extent);
            st.stats.reclaims += 1;
            st.stats.evacuated += evacuated as u64;
            st.stats.dropped += dropped as u64;
        }
        drop(guards);
        Ok(Some(ReclaimReport { extent, evacuated, dropped, reset_dep }))
    }

    /// Evacuates the still-live chunks of a *quarantined* extent to fresh
    /// extents. The dead extent cannot be read, so payloads come from the
    /// `lookup` callback (in practice the buffer cache — the only
    /// surviving local copy). Live chunks with no cached copy are
    /// *stranded*: their registry entries stay, and reads keep returning
    /// [`ChunkError::Degraded`] until a cross-node re-replication (out of
    /// scope here) restores them. Unreferenced chunks are dropped from
    /// the registry. The extent is never reset — it is dead, not free.
    pub fn evacuate_quarantined(
        &self,
        extent: ExtentId,
        stream: Stream,
        referencer: &dyn Referencer,
        lookup: &dyn Fn(&Locator) -> Option<Vec<u8>>,
    ) -> Result<EvacuationReport, ChunkError> {
        let chunks: Vec<Locator> = {
            let st = self.core.state.lock();
            st.registry
                .get(&extent.0)
                .map(|per| {
                    per.iter()
                        .map(|(off, m)| Locator {
                            extent,
                            offset: *off,
                            len: m.len,
                            uuid: m.uuid,
                        })
                        .collect()
                })
                .unwrap_or_default()
        };
        let mut evacuated = 0usize;
        let mut stranded = 0usize;
        let mut dropped = 0usize;
        let mut deps: Vec<Dependency> = Vec::new();
        for old in chunks {
            if !referencer.is_live(&old) {
                if let Some(per) = self.core.state.lock().registry.get_mut(&extent.0) {
                    per.remove(&old.offset);
                }
                dropped += 1;
                continue;
            }
            match lookup(&old) {
                Some(payload) => {
                    coverage::hit("chunk.evacuate.from_cache");
                    let none = self.core.em.scheduler().none();
                    let out = self.put(stream, &payload, &none)?;
                    let ptr_dep = referencer.relocated(&old, &out.locator, &out.data_dep);
                    {
                        let obs = self.core.em.scheduler().obs();
                        obs.registry().counter("chunk.relocations").inc();
                        obs.trace().event(TraceEvent::Relocation {
                            from_extent: old.extent.0,
                            to_extent: out.locator.extent.0,
                        });
                    }
                    deps.push(out.data_dep.clone());
                    deps.push(ptr_dep);
                    drop(out.guard);
                    if let Some(per) = self.core.state.lock().registry.get_mut(&extent.0) {
                        per.remove(&old.offset);
                    }
                    evacuated += 1;
                }
                None => {
                    coverage::hit("chunk.evacuate.stranded");
                    stranded += 1;
                }
            }
        }
        {
            let mut st = self.core.state.lock();
            st.open.retain(|_, e| *e != extent);
            st.stats.evacuated += evacuated as u64;
        }
        let dep = self.core.em.scheduler().join(&deps);
        Ok(EvacuationReport { extent, evacuated, stranded, dropped, dep })
    }

    /// All live locators currently registered, in deterministic order
    /// (test/debug support).
    pub fn registered_locators(&self) -> Vec<Locator> {
        let st = self.core.state.lock();
        let mut out = Vec::new();
        for (ext, per) in &st.registry {
            for (off, meta) in per {
                out.push(Locator {
                    extent: ExtentId(*ext),
                    offset: *off,
                    len: meta.len,
                    uuid: meta.uuid,
                });
            }
        }
        out
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> ChunkStats {
        self.core.state.lock().stats
    }

    /// The fault configuration.
    pub fn faults(&self) -> &FaultConfig {
        &self.core.faults
    }
}
