//! Chunk storage for ShardStore: on-disk framing, the chunk store
//! (PUT/GET over opaque locators), and crash-consistent chunk reclamation
//! (§2.1 and §5 of the paper).

pub mod frame;
mod store;

pub use frame::{decode_frame_at, encode_frame, scan_extent, DecodedFrame, FRAME_OVERHEAD, MAGIC};
pub use store::{
    ChunkError, ChunkStats, ChunkStore, EvacuationReport, Locator, PutGuard, PutOutcome,
    ReclaimReport, Referencer, Stream,
};

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;
    use std::sync::Arc;

    use shardstore_conc::sync::Mutex;
    use shardstore_dependency::{Dependency, IoScheduler};
    use shardstore_faults::{BugId, FaultConfig};
    use shardstore_superblock::ExtentManager;
    use shardstore_vdisk::{CrashPlan, Disk, Geometry};

    use super::*;

    fn setup() -> ChunkStore {
        setup_with(FaultConfig::none())
    }

    fn setup_with(faults: FaultConfig) -> ChunkStore {
        let disk = Disk::new(Geometry::small());
        let sched = IoScheduler::new(disk);
        let em = ExtentManager::format(sched, faults.clone());
        ChunkStore::new(em, faults, 42)
    }

    trait PutParts {
        fn put_parts(
            &self,
            stream: Stream,
            payload: &[u8],
            dep: &Dependency,
        ) -> Result<(Locator, Dependency, PutGuard), ChunkError>;
    }

    impl PutParts for ChunkStore {
        fn put_parts(
            &self,
            stream: Stream,
            payload: &[u8],
            dep: &Dependency,
        ) -> Result<(Locator, Dependency, PutGuard), ChunkError> {
            self.put(stream, payload, dep).map(|o| o.into_parts())
        }
    }

    /// A referencer over an explicit live map, recording relocations.
    #[derive(Default)]
    struct MapReferencer {
        live: Mutex<BTreeMap<u128, Locator>>,
    }

    impl MapReferencer {
        fn insert(&self, loc: Locator) {
            self.live.lock().insert(loc.uuid, loc);
        }
    }

    impl Referencer for MapReferencer {
        fn is_live(&self, locator: &Locator) -> bool {
            self.live.lock().get(&locator.uuid) == Some(locator)
        }

        fn relocated(&self, old: &Locator, new: &Locator, copy_dep: &Dependency) -> Dependency {
            let mut live = self.live.lock();
            if live.get(&old.uuid) == Some(old) {
                live.remove(&old.uuid);
                live.insert(new.uuid, *new);
            }
            // A real index would persist the pointer update; the map is
            // memory-only, so the update "persists" with the copy.
            copy_dep.clone()
        }

        fn quiesce(&self) -> Result<Option<Dependency>, ChunkError> {
            Ok(None)
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let (loc, dep, _g) = cs.put_parts(Stream::Data, b"hello chunk", &none).unwrap();
        cs.extent_manager().pump().unwrap();
        assert!(dep.is_persistent());
        assert_eq!(cs.get(&loc).unwrap(), b"hello chunk");
    }

    #[test]
    fn put_batch_roundtrips_each_chunk() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let payloads: Vec<&[u8]> = vec![b"alpha", b"bb", b"cccccc"];
        let outs = cs.put_batch(Stream::Data, &payloads, &none).unwrap();
        assert_eq!(outs.len(), 3);
        cs.extent_manager().pump().unwrap();
        for (out, payload) in outs.iter().zip(&payloads) {
            assert!(out.dep.is_persistent());
            assert_eq!(cs.get(&out.locator).unwrap(), *payload);
        }
        // All three chunks landed on one extent, back to back.
        let ext = outs[0].locator.extent;
        assert!(outs.iter().all(|o| o.locator.extent == ext));
    }

    #[test]
    fn put_batch_coalesces_disk_ios() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let sched = cs.extent_manager().scheduler().clone();
        let submitted_before = sched.counter("sched.writes_submitted");
        let coalesced_before = sched.counter("sched.writes_coalesced");
        let payloads: Vec<&[u8]> = vec![b"one", b"two", b"three", b"four"];
        let outs = cs.put_batch(Stream::Data, &payloads, &none).unwrap();
        cs.extent_manager().pump().unwrap();
        // 4 frames + 1 shared superblock update submitted...
        assert_eq!(sched.counter("sched.writes_submitted") - submitted_before, 5);
        // ...and the 4 contiguous frames merged into fewer disk IOs.
        assert!(sched.counter("sched.writes_coalesced") > coalesced_before);
        drop(outs);
    }

    #[test]
    fn put_batch_guards_pin_extent_against_reclaim() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let outs = cs.put_batch(Stream::Data, &[b"a".as_slice(), b"b".as_slice()], &none).unwrap();
        cs.extent_manager().pump().unwrap();
        let ext = outs[0].locator.extent;
        let referencer = MapReferencer::default();
        // Drop one guard: the extent must stay pinned by the other.
        let (first, second) = {
            let mut it = outs.into_iter();
            (it.next().unwrap(), it.next().unwrap())
        };
        drop(first.guard);
        assert!(cs.reclaim(ext, Stream::Data, &referencer).unwrap().is_none());
        drop(second.guard);
        assert!(cs.reclaim(ext, Stream::Data, &referencer).unwrap().is_some());
    }

    #[test]
    fn put_batch_overflow_falls_back_to_single_puts() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let size = cs.extent_manager().extent_size();
        let big = vec![7u8; size / 2];
        let payloads: Vec<&[u8]> = vec![&big, &big, &big];
        let outs = cs.put_batch(Stream::Data, &payloads, &none).unwrap();
        cs.extent_manager().pump().unwrap();
        assert_eq!(outs.len(), 3);
        for (out, payload) in outs.iter().zip(&payloads) {
            assert_eq!(cs.get(&out.locator).unwrap(), *payload);
        }
    }

    #[test]
    fn get_unknown_locator_fails_not_found() {
        let cs = setup();
        let bogus = Locator {
            extent: shardstore_vdisk::ExtentId(3),
            offset: 0,
            len: 4,
            uuid: 99,
        };
        assert!(matches!(cs.get(&bogus), Err(ChunkError::NotFound(_))));
    }

    #[test]
    fn locators_are_unique() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..20u8 {
            let (loc, _, _g) = cs.put_parts(Stream::Data, &[i], &none).unwrap();
            assert!(seen.insert(loc.uuid), "duplicate uuid for {loc}");
        }
    }

    #[test]
    fn puts_fill_extent_then_spill_to_new_one() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let payload = vec![7u8; 200];
        let mut extents = std::collections::BTreeSet::new();
        for _ in 0..8 {
            let (loc, _, _g) = cs.put_parts(Stream::Data, &payload, &none).unwrap();
            extents.insert(loc.extent);
        }
        assert!(extents.len() >= 2, "large puts should spill to multiple extents");
    }

    #[test]
    fn streams_do_not_share_extents() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let (a, _, _g1) = cs.put_parts(Stream::Data, b"d", &none).unwrap();
        let (b, _, _g2) = cs.put_parts(Stream::Lsm, b"l", &none).unwrap();
        let (c, _, _g3) = cs.put_parts(Stream::Meta, b"m", &none).unwrap();
        assert_ne!(a.extent, b.extent);
        assert_ne!(b.extent, c.extent);
        assert_ne!(a.extent, c.extent);
    }

    #[test]
    fn oversized_chunk_is_rejected() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let size = cs.extent_manager().extent_size();
        assert!(matches!(
            cs.put(Stream::Data, &vec![0u8; size + 1], &none),
            Err(ChunkError::NoSpace { .. })
        ));
    }

    #[test]
    fn recover_rebuilds_registry_from_scan() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let (loc, _, _g) = cs.put_parts(Stream::Data, b"durable", &none).unwrap();
        cs.extent_manager().pump().unwrap();
        cs.extent_manager().scheduler().crash(&CrashPlan::LoseAll);
        let em = ExtentManager::recover(
            cs.extent_manager().scheduler().clone(),
            FaultConfig::none(),
        )
        .unwrap();
        let cs2 = ChunkStore::recover(em, FaultConfig::none(), 43).unwrap();
        assert_eq!(cs2.get(&loc).unwrap(), b"durable");
    }

    #[test]
    fn unpersisted_chunk_is_gone_after_crash() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let (loc, dep, _g) = cs.put_parts(Stream::Data, b"volatile", &none).unwrap();
        cs.extent_manager().scheduler().crash(&CrashPlan::LoseAll);
        assert!(!dep.is_persistent());
        let em = ExtentManager::recover(
            cs.extent_manager().scheduler().clone(),
            FaultConfig::none(),
        )
        .unwrap();
        let cs2 = ChunkStore::recover(em, FaultConfig::none(), 44).unwrap();
        assert!(matches!(cs2.get(&loc), Err(ChunkError::NotFound(_))));
    }

    #[test]
    fn reclaim_evacuates_live_and_drops_dead() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let refs = MapReferencer::default();
        let (live, _, g1) = cs.put_parts(Stream::Data, b"live data", &none).unwrap();
        refs.insert(live);
        let (dead, _, g2) = cs.put_parts(Stream::Data, b"dead data", &none).unwrap();
        cs.mark_dead(&dead);
        cs.extent_manager().pump().unwrap();
        drop((g1, g2));
        assert_eq!(live.extent, dead.extent);
        let report = cs.reclaim(live.extent, Stream::Data, &refs).unwrap().unwrap();
        assert_eq!(report.evacuated, 1);
        assert_eq!(report.dropped, 1);
        cs.extent_manager().pump().unwrap();
        assert!(report.reset_dep.is_persistent());
        // The live chunk moved and is readable at its new locator.
        let new_loc = refs.get_by_payload();
        assert_ne!(new_loc.extent, live.extent);
        assert_eq!(cs.get(&new_loc).unwrap(), b"live data");
        // The old locators are gone.
        assert!(cs.get(&live).is_err());
        assert!(cs.get(&dead).is_err());
        // The extent is reusable.
        assert_eq!(cs.extent_manager().write_pointer(live.extent), 0);
    }

    impl MapReferencer {
        /// Returns the single live locator (test helper).
        fn get_by_payload(&self) -> Locator {
            let live = self.live.lock();
            assert_eq!(live.len(), 1);
            *live.values().next().unwrap()
        }
    }

    #[test]
    fn reclaim_reset_waits_for_evacuations() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let refs = MapReferencer::default();
        let (live, _, g) = cs.put_parts(Stream::Data, b"precious", &none).unwrap();
        refs.insert(live);
        cs.extent_manager().pump().unwrap();
        drop(g);
        let report = cs.reclaim(live.extent, Stream::Data, &refs).unwrap().unwrap();
        // Nothing pumped yet: the reset must not be persistent before the
        // evacuation copy is.
        assert!(!report.reset_dep.is_persistent());
        // Crash now: the evacuated copy is lost, but so is the reset — the
        // original chunk is still on disk after recovery.
        cs.extent_manager().scheduler().crash(&CrashPlan::LoseAll);
        let em = ExtentManager::recover(
            cs.extent_manager().scheduler().clone(),
            FaultConfig::none(),
        )
        .unwrap();
        let cs2 = ChunkStore::recover(em, FaultConfig::none(), 45).unwrap();
        assert_eq!(cs2.get(&live).unwrap(), b"precious");
    }

    #[test]
    fn reclaim_skips_pinned_extents() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let refs = MapReferencer::default();
        let (loc, _, guard) = cs.put_parts(Stream::Data, b"in flight", &none).unwrap();
        cs.extent_manager().pump().unwrap();
        // Pin held: reclamation refuses.
        assert!(cs.reclaim(loc.extent, Stream::Data, &refs).unwrap().is_none());
        drop(guard);
        // Pin released: reclamation proceeds (chunk unreferenced → drop).
        let report = cs.reclaim(loc.extent, Stream::Data, &refs).unwrap().unwrap();
        assert_eq!(report.dropped, 1);
    }

    #[test]
    fn b11_seeded_put_does_not_pin() {
        let cs = setup_with(FaultConfig::seed(BugId::B11LocatorRace));
        let none = cs.extent_manager().scheduler().none();
        let refs = MapReferencer::default();
        let (loc, _, _guard) = cs.put_parts(Stream::Data, b"racy", &none).unwrap();
        cs.extent_manager().pump().unwrap();
        // Even while the guard is alive, reclamation does not skip: the
        // historical race window.
        let report = cs.reclaim(loc.extent, Stream::Data, &refs).unwrap();
        assert!(report.is_some(), "buggy reclaim must not skip the in-flight extent");
        assert!(cs.get(&loc).is_err(), "locator invalidated under the caller");
    }

    #[test]
    fn b5_seeded_transient_read_error_forgets_chunks() {
        // Fixed behaviour: reclamation aborts on a transient read error.
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let refs = MapReferencer::default();
        let (live, _, g) = cs.put_parts(Stream::Data, b"keep me", &none).unwrap();
        refs.insert(live);
        cs.extent_manager().pump().unwrap();
        drop(g);
        cs.extent_manager().scheduler().disk().inject_fail_once(live.extent);
        assert!(cs.reclaim(live.extent, Stream::Data, &refs).is_err());
        assert_eq!(cs.get(&live).unwrap(), b"keep me");

        // Buggy behaviour: the error is swallowed and the extent reset,
        // losing the live chunk.
        let cs = setup_with(FaultConfig::seed(BugId::B5ReclamationTransientError));
        let none = cs.extent_manager().scheduler().none();
        let refs = MapReferencer::default();
        let (live, _, g) = cs.put_parts(Stream::Data, b"keep me", &none).unwrap();
        refs.insert(live);
        cs.extent_manager().pump().unwrap();
        drop(g);
        cs.extent_manager().scheduler().disk().inject_fail_once(live.extent);
        let report = cs.reclaim(live.extent, Stream::Data, &refs).unwrap().unwrap();
        assert_eq!(report.evacuated, 0);
        cs.extent_manager().pump().unwrap();
        assert!(cs.get(&live).is_err(), "live chunk forgotten by buggy reclamation");
    }

    #[test]
    fn corrupt_frame_is_detected_not_returned() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        let (loc, _, _g) = cs.put_parts(Stream::Data, b"fragile", &none).unwrap();
        cs.extent_manager().pump().unwrap();
        // Corrupt one payload byte directly on the disk.
        let disk = Arc::clone(cs.extent_manager().scheduler().disk());
        disk.write(loc.extent, loc.offset as usize + 22, &[0xFF]).unwrap();
        disk.flush_all().unwrap();
        // Payload corruption alone is invisible without a payload CRC
        // (faithful to the paper's frame); corrupt the trailer instead to
        // verify detection.
        let trailer_off = loc.offset as usize + 22 + loc.len as usize;
        disk.write(loc.extent, trailer_off, &[0x00, 0x01, 0x02]).unwrap();
        disk.flush_all().unwrap();
        assert!(matches!(cs.get(&loc), Err(ChunkError::Corrupt(_))));
    }

    #[test]
    fn victim_selection_prefers_most_garbage() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        // Fill two extents; mark everything in the second dead.
        let big = vec![1u8; 400];
        let (a, _, g1) = cs.put_parts(Stream::Data, &big, &none).unwrap();
        let (b, _, g2) = cs.put_parts(Stream::Data, &big, &none).unwrap();
        let (c, _, g3) = cs.put_parts(Stream::Data, &big, &none).unwrap();
        drop((g1, g2, g3));
        // Find a chunk on a non-open extent and mark it dead.
        let all = [a, b, c];
        let open_extent = all.last().unwrap().extent;
        let dead = all.iter().find(|l| l.extent != open_extent).unwrap();
        cs.mark_dead(dead);
        assert_eq!(cs.select_victim(Stream::Data), Some(dead.extent));
    }

    #[test]
    fn forced_uuid_is_used_once() {
        let cs = setup();
        let none = cs.extent_manager().scheduler().none();
        cs.force_next_uuid(0x1234);
        let (a, _, _g1) = cs.put_parts(Stream::Data, b"x", &none).unwrap();
        let (b, _, _g2) = cs.put_parts(Stream::Data, b"y", &none).unwrap();
        assert_eq!(a.uuid, 0x1234);
        assert_ne!(b.uuid, 0x1234);
    }
}
