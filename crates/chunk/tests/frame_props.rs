//! Property-based tests of the chunk frame codec and extent scanner:
//! panic-freedom on arbitrary bytes (the §7 serialization property) and
//! scan correctness on well-formed layouts.

use proptest::prelude::*;
use shardstore_chunk::{decode_frame_at, encode_frame, scan_extent, FRAME_OVERHEAD};
use shardstore_faults::FaultConfig;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any byte string decodes without panicking (§7: deserializers must
    /// be robust to arbitrary corruption).
    #[test]
    fn decode_never_panics(buf in proptest::collection::vec(any::<u8>(), 0..2048),
                           offset in 0usize..2100,
                           limit in 0usize..2100) {
        let _ = decode_frame_at(&buf, offset, limit);
    }

    /// Scanning any byte string never panics and every reported frame is
    /// within bounds and self-consistent.
    #[test]
    fn scan_never_panics_and_reports_valid_frames(
        buf in proptest::collection::vec(any::<u8>(), 0..4096),
        page in prop_oneof![Just(64usize), Just(128), Just(256)],
    ) {
        let frames = scan_extent(&buf, buf.len(), page, &FaultConfig::none());
        for f in &frames {
            prop_assert!(f.end() <= buf.len());
            let re = decode_frame_at(&buf, f.offset, buf.len()).unwrap();
            prop_assert_eq!(&re, f);
        }
        // Frames are reported in order and non-overlapping.
        for w in frames.windows(2) {
            prop_assert!(w[1].offset >= w[0].end());
        }
    }

    /// Round trip: encoded frames always decode back to their payload.
    #[test]
    fn encode_decode_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..512),
                               uuid in any::<u128>()) {
        let frame = encode_frame(&payload, uuid);
        prop_assert_eq!(frame.len(), payload.len() + FRAME_OVERHEAD);
        let decoded = decode_frame_at(&frame, 0, frame.len()).unwrap();
        prop_assert_eq!(decoded.uuid, uuid);
        prop_assert_eq!(decoded.payload(&frame), &payload[..]);
    }

    /// A packed sequence of random frames is fully recovered by the scan.
    #[test]
    fn scan_recovers_packed_frames(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..100), 1..10),
    ) {
        let mut buf = Vec::new();
        let mut expected = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            expected.push((buf.len(), p.clone()));
            // Distinct uuids; avoid colliding with payload content rarely
            // enough not to matter (uuid drawn from a distinct space).
            buf.extend_from_slice(&encode_frame(p, 0xA000_0000_0000_0000_0000_0000_0000_0000u128 + i as u128));
        }
        let frames = scan_extent(&buf, buf.len(), 128, &FaultConfig::none());
        prop_assert_eq!(frames.len(), payloads.len());
        for (f, (off, p)) in frames.iter().zip(expected.iter()) {
            prop_assert_eq!(f.offset, *off);
            prop_assert_eq!(f.payload(&buf), &p[..]);
        }
    }

    /// Truncating the scanned window (a stale write pointer) never yields
    /// frames beyond the window.
    #[test]
    fn scan_respects_write_pointer(
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..60), 1..6),
        cut_ratio in 0.0f64..1.0,
    ) {
        let mut buf = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            buf.extend_from_slice(&encode_frame(p, i as u128 + 1));
        }
        let cut = ((buf.len() as f64) * cut_ratio) as usize;
        let frames = scan_extent(&buf, cut, 128, &FaultConfig::none());
        for f in frames {
            prop_assert!(f.end() <= cut);
        }
    }
}
