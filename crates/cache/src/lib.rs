//! The buffer cache: a byte-budgeted LRU over chunk payloads, wrapped
//! around the chunk store.
//!
//! Reads of hot chunks (LSM-tree lookups in particular) go through this
//! cache. Correctness obligations, both of which appear in the paper's
//! Fig. 5 bug catalog:
//!
//! - When an extent is reset (by reclamation), every cached chunk from
//!   that extent must be drained — issue #2 was a cache that was not
//!   correctly drained after a reset, serving stale data for dead
//!   locators ([`BugId::B2CacheNotDrained`] seeds it).
//! - Writes through the cache must carry the full dependency, including
//!   the soft-write-pointer superblock update — issue #8 was a write path
//!   that dropped that dependency, reporting persistence before the
//!   pointer covering the data was durable
//!   ([`BugId::B8MissingPointerDependency`] seeds it).
//!
//! The cache exposes [`coverage`] probes `cache.hit` / `cache.miss`; §8.3
//! of the paper recounts a bug that hid behind an oversized test cache
//! whose miss path was never exercised, which motivated exactly this kind
//! of coverage monitoring.
//!
//! Internally the cache is **sharded**: the byte budget is split across
//! independently locked segments selected by the locator's position hash,
//! so concurrent readers of different chunks do not serialize on one
//! lock. Small caches (the property-test configurations) collapse to a
//! single segment, preserving exact global-LRU semantics where tests
//! depend on them.

pub mod value;

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

pub use value::ValueBuf;

use shardstore_chunk::{ChunkError, ChunkStore, Locator, PutOutcome, ReclaimReport, Referencer, Stream};
use shardstore_conc::sync::Mutex;
use shardstore_dependency::Dependency;
use shardstore_faults::{coverage, BugId, FaultConfig};
use shardstore_obs::{Counter, Histogram, Obs, TraceEvent};
use shardstore_vdisk::ExtentId;

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that fell through to the chunk store.
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
    /// Entries dropped by extent drains.
    pub drained: u64,
}

#[derive(Debug)]
struct Entry {
    payload: Arc<Vec<u8>>,
    last_use: u64,
}

/// Cache key: the chunk's position. Like a real block cache, entries are
/// keyed by *where* the data lives, not by which chunk identity wrote it —
/// which is why draining on extent reset is a hard correctness obligation
/// (issue #2): after a reset reuses the space, a stale entry at the same
/// position would be served for the new chunk.
type CacheKey = (u32, u32);

fn key_of(locator: &Locator) -> CacheKey {
    (locator.extent.0, locator.offset)
}

#[derive(Debug)]
struct CacheState {
    entries: BTreeMap<CacheKey, Entry>,
    bytes: usize,
    tick: u64,
}

impl CacheState {
    fn empty() -> Self {
        Self { entries: BTreeMap::new(), bytes: 0, tick: 0 }
    }
}

/// Registry-backed metric handles for the cache. The registry (shared
/// through the scheduler's [`Obs`]) is the single source of truth;
/// [`CachedChunkStore::stats`] is a thin compat view over these. The
/// per-shard histograms record the *segment index* of each hit/miss, so a
/// snapshot exposes the hit distribution across shards without a counter
/// per segment.
#[derive(Debug, Clone)]
struct CacheCounters {
    obs: Obs,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    drained: Counter,
    shard_hits: Histogram,
    shard_misses: Histogram,
}

impl CacheCounters {
    fn new(obs: Obs) -> Self {
        let r = obs.registry();
        // One inclusive bucket per possible segment (the overflow bucket
        // catches MAX_SEGMENTS - 1).
        let shard_bounds: Vec<u64> = (0..MAX_SEGMENTS as u64 - 1).collect();
        Self {
            hits: r.counter("cache.hits"),
            misses: r.counter("cache.misses"),
            evictions: r.counter("cache.evictions"),
            drained: r.counter("cache.drained"),
            shard_hits: r.histogram("cache.shard_hits", &shard_bounds),
            shard_misses: r.histogram("cache.shard_misses", &shard_bounds),
            obs,
        }
    }
}

/// Smallest byte budget worth a dedicated segment: below this, sharding
/// would just fragment the LRU without reducing contention.
const MIN_SEGMENT_BYTES: usize = 4096;
/// Upper bound on segment count.
const MAX_SEGMENTS: usize = 16;

fn segment_count(capacity: usize) -> usize {
    (capacity / MIN_SEGMENT_BYTES).clamp(1, MAX_SEGMENTS)
}

/// A chunk store wrapped with an LRU payload cache.
///
/// Cheap to clone; all clones share the cache and the underlying store.
#[derive(Clone)]
pub struct CachedChunkStore {
    store: ChunkStore,
    faults: FaultConfig,
    capacity: usize,
    /// Per-segment byte budget (`capacity / segments.len()`).
    segment_capacity: usize,
    /// Independently locked LRU segments, selected by position hash.
    segments: Arc<[Mutex<CacheState>]>,
    counters: CacheCounters,
}

impl fmt::Debug for CachedChunkStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (entries, bytes) = self.segments.iter().fold((0usize, 0usize), |(n, b), seg| {
            let st = seg.lock();
            (n + st.entries.len(), b + st.bytes)
        });
        f.debug_struct("CachedChunkStore")
            .field("entries", &entries)
            .field("bytes", &bytes)
            .field("capacity", &self.capacity)
            .field("segments", &self.segments.len())
            .finish()
    }
}

impl CachedChunkStore {
    /// Wraps a chunk store with a cache holding at most `capacity` payload
    /// bytes, split across position-hashed segments. A zero capacity
    /// disables caching entirely.
    pub fn new(store: ChunkStore, faults: FaultConfig, capacity: usize) -> Self {
        let n = segment_count(capacity);
        let segments: Arc<[Mutex<CacheState>]> =
            (0..n).map(|_| Mutex::new(CacheState::empty())).collect::<Vec<_>>().into();
        let counters = CacheCounters::new(store.extent_manager().scheduler().obs());
        Self { store, faults, capacity, segment_capacity: capacity / n, segments, counters }
    }

    /// The wrapped chunk store.
    pub fn chunk_store(&self) -> &ChunkStore {
        &self.store
    }

    /// Number of independently locked cache segments.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    fn segment_index(&self, locator: &Locator) -> usize {
        locator.position_hash() as usize % self.segments.len()
    }

    fn segment(&self, locator: &Locator) -> &Mutex<CacheState> {
        &self.segments[self.segment_index(locator)]
    }

    fn insert(&self, locator: Locator, payload: Arc<Vec<u8>>) {
        if self.segment_capacity == 0 || payload.len() > self.segment_capacity {
            return;
        }
        let mut st = self.segment(&locator).lock();
        st.tick += 1;
        let tick = st.tick;
        st.bytes += payload.len();
        if let Some(old) = st.entries.insert(key_of(&locator), Entry { payload, last_use: tick })
        {
            st.bytes -= old.payload.len();
        }
        // Evict least-recently-used entries until within budget.
        while st.bytes > self.segment_capacity {
            let victim = st
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_use)
                .map(|(k, _)| *k)
                .expect("over budget implies non-empty");
            let e = st.entries.remove(&victim).expect("victim present");
            st.bytes -= e.payload.len();
            self.counters.evictions.inc();
            self.counters
                .obs
                .trace()
                .event(TraceEvent::CacheEvict { extent: victim.0, offset: victim.1 });
            coverage::hit("cache.evict");
        }
    }

    /// Reads a chunk payload, serving from the cache when possible.
    pub fn get(&self, locator: &Locator) -> Result<Arc<Vec<u8>>, ChunkError> {
        let seg_idx = self.segment_index(locator);
        {
            let mut st = self.segments[seg_idx].lock();
            st.tick += 1;
            let tick = st.tick;
            let hit = st.entries.get_mut(&key_of(locator)).map(|e| {
                e.last_use = tick;
                Arc::clone(&e.payload)
            });
            if let Some(payload) = hit {
                self.counters.hits.inc();
                self.counters.shard_hits.record(seg_idx as u64);
                self.counters.obs.trace().event(TraceEvent::CacheHit {
                    extent: locator.extent.0,
                    offset: locator.offset,
                });
                coverage::hit("cache.hit");
                return Ok(payload);
            }
            self.counters.misses.inc();
            self.counters.shard_misses.record(seg_idx as u64);
            self.counters.obs.trace().event(TraceEvent::CacheMiss {
                extent: locator.extent.0,
                offset: locator.offset,
            });
        }
        coverage::hit("cache.miss");
        let payload = Arc::new(self.store.get(locator)?);
        self.insert(*locator, Arc::clone(&payload));
        Ok(payload)
    }

    /// Writes a chunk. The cache is a *read* cache (populated on get
    /// misses, like a plain block cache); writes go straight to the chunk
    /// store, whose IO scheduler already serves read-your-writes for
    /// pending data.
    pub fn put(
        &self,
        stream: Stream,
        payload: &[u8],
        dep: &Dependency,
    ) -> Result<PutOutcome, ChunkError> {
        let mut out = self.store.put(stream, payload, dep)?;
        if self.faults.is(BugId::B8MissingPointerDependency) {
            // BUG B8 (seeded): the cache's write path returned a dependency
            // missing the soft-write-pointer superblock update, so callers
            // observed persistence before the pointer covering the data
            // was durable — after a crash the data is beyond the recovered
            // write pointer and unreadable.
            out.dep = out.data_dep.clone();
        }
        Ok(out)
    }

    /// Writes several chunks as one group commit (see
    /// [`ChunkStore::put_batch`]). Like [`CachedChunkStore::put`], the
    /// cache itself is untouched — the batch goes straight to the chunk
    /// store's grouped write path.
    pub fn put_batch(
        &self,
        stream: Stream,
        payloads: &[&[u8]],
        dep: &Dependency,
    ) -> Result<Vec<PutOutcome>, ChunkError> {
        let mut outs = self.store.put_batch(stream, payloads, dep)?;
        if self.faults.is(BugId::B8MissingPointerDependency) {
            // BUG B8 (seeded): same missing-pointer-dependency defect as
            // the single-put path.
            for out in &mut outs {
                out.dep = out.data_dep.clone();
            }
        }
        Ok(outs)
    }

    /// Cache-only lookup: returns the cached payload without falling
    /// through to the chunk store. This is how degraded mode finds the
    /// last surviving local copy of a chunk whose extent was quarantined —
    /// the disk copy is unreadable, so a store fallthrough would only
    /// report the fault again.
    pub fn cached(&self, locator: &Locator) -> Option<Arc<Vec<u8>>> {
        let mut st = self.segment(locator).lock();
        st.tick += 1;
        let tick = st.tick;
        st.entries.get_mut(&key_of(locator)).map(|e| {
            e.last_use = tick;
            Arc::clone(&e.payload)
        })
    }

    /// Evacuates the live chunks of a quarantined extent (see
    /// [`ChunkStore::evacuate_quarantined`]), sourcing payloads from this
    /// cache. The quarantined extent is deliberately *not* drained: its
    /// cached entries are the only local copies of any stranded chunks,
    /// and the extent's space is never reused while quarantined, so the
    /// stale-read hazard that mandates draining after a reset (issue #2)
    /// does not exist here.
    pub fn evacuate_quarantined(
        &self,
        extent: ExtentId,
        stream: Stream,
        referencer: &dyn Referencer,
    ) -> Result<shardstore_chunk::EvacuationReport, ChunkError> {
        self.store.evacuate_quarantined(extent, stream, referencer, &|l: &Locator| {
            self.cached(l).map(|p| p.as_ref().clone())
        })
    }

    /// Invalidates a single cache entry (e.g. on delete).
    pub fn invalidate(&self, locator: &Locator) {
        let mut st = self.segment(locator).lock();
        if let Some(e) = st.entries.remove(&key_of(locator)) {
            st.bytes -= e.payload.len();
        }
    }

    /// Drops every cached chunk stored on `extent`. Must be called when
    /// the extent is reset. Entries from one extent hash to many segments
    /// (the hash covers the offset too), so every segment is swept.
    pub fn drain_extent(&self, extent: ExtentId) {
        for seg in self.segments.iter() {
            let mut st = seg.lock();
            let victims: Vec<CacheKey> =
                st.entries.keys().filter(|(e, _)| *e == extent.0).copied().collect();
            for v in victims {
                let e = st.entries.remove(&v).expect("listed key present");
                st.bytes -= e.payload.len();
                self.counters.drained.inc();
            }
        }
        coverage::hit("cache.drain_extent");
    }

    /// Reclaims an extent through the underlying chunk store, draining the
    /// cache for the reset extent (the fix for issue #2).
    pub fn reclaim(
        &self,
        extent: ExtentId,
        stream: Stream,
        referencer: &dyn Referencer,
    ) -> Result<Option<ReclaimReport>, ChunkError> {
        let report = self.store.reclaim(extent, stream, referencer)?;
        if report.is_some() {
            if self.faults.is(BugId::B2CacheNotDrained) {
                // BUG B2 (seeded): the cache is not drained after the
                // reset, so stale payloads are served for locators that no
                // longer exist on disk.
                coverage::hit("cache.b2_skip_drain");
            } else {
                self.drain_extent(extent);
            }
        }
        Ok(report)
    }

    /// Drops the entire cache (e.g. on dirty reboot simulation, since the
    /// cache is volatile state).
    pub fn clear(&self) {
        for seg in self.segments.iter() {
            let mut st = seg.lock();
            st.entries.clear();
            st.bytes = 0;
        }
    }

    /// Current cached byte total, summed across segments.
    pub fn cached_bytes(&self) -> usize {
        self.segments.iter().map(|seg| seg.lock().bytes).sum()
    }

    /// Cache statistics. Compat view: the `cache.*` counters in the shared
    /// registry (see the scheduler's `obs()`) are the source of truth;
    /// this assembles the legacy struct from them.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.counters.hits.get(),
            misses: self.counters.misses.get(),
            evictions: self.counters.evictions.get(),
            drained: self.counters.drained.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use shardstore_dependency::IoScheduler;
    use shardstore_superblock::ExtentManager;
    use shardstore_vdisk::{Disk, Geometry};

    use super::*;

    fn setup(capacity: usize, faults: FaultConfig) -> CachedChunkStore {
        let disk = Disk::new(Geometry::small());
        let sched = IoScheduler::new(disk);
        let em = ExtentManager::format(sched, faults.clone());
        let cs = ChunkStore::new(em, faults.clone(), 7);
        CachedChunkStore::new(cs, faults, capacity)
    }

    fn pump(c: &CachedChunkStore) {
        c.chunk_store().extent_manager().pump().unwrap();
    }

    #[test]
    fn second_get_is_a_hit() {
        let c = setup(1024, FaultConfig::none());
        let none = c.chunk_store().extent_manager().scheduler().none();
        let out = c.put(Stream::Data, b"cached", &none).unwrap();
        pump(&c);
        assert_eq!(*c.get(&out.locator).unwrap(), b"cached");
        assert_eq!(*c.get(&out.locator).unwrap(), b"cached");
        let stats = c.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn put_does_not_populate_the_read_cache() {
        let c = setup(1024, FaultConfig::none());
        let none = c.chunk_store().extent_manager().scheduler().none();
        let out = c.put(Stream::Data, b"fresh", &none).unwrap();
        pump(&c);
        assert_eq!(c.cached_bytes(), 0);
        // First read misses (and populates), second hits.
        assert_eq!(*c.get(&out.locator).unwrap(), b"fresh");
        assert_eq!(c.stats().misses, 1);
        assert_eq!(*c.get(&out.locator).unwrap(), b"fresh");
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn eviction_respects_byte_budget() {
        let c = setup(100, FaultConfig::none());
        let none = c.chunk_store().extent_manager().scheduler().none();
        let outs: Vec<_> =
            (0..8u8).map(|i| c.put(Stream::Data, &[i; 40], &none).unwrap()).collect();
        for out in &outs {
            c.get(&out.locator).unwrap();
        }
        assert!(c.cached_bytes() <= 100);
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = setup(100, FaultConfig::none());
        let none = c.chunk_store().extent_manager().scheduler().none();
        let a = c.put(Stream::Data, &[1u8; 40], &none).unwrap();
        let b = c.put(Stream::Data, &[2u8; 40], &none).unwrap();
        pump(&c);
        c.get(&a.locator).unwrap();
        c.get(&b.locator).unwrap();
        // Touch `a` so `b` is the LRU, then populate a third entry to
        // force one eviction.
        c.get(&a.locator).unwrap();
        let d = c.put(Stream::Data, &[3u8; 40], &none).unwrap();
        c.get(&d.locator).unwrap();
        let before = c.stats();
        c.get(&a.locator).unwrap(); // still cached
        c.get(&b.locator).unwrap(); // evicted → miss
        let after = c.stats();
        assert_eq!(after.hits - before.hits, 1);
        assert_eq!(after.misses - before.misses, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = setup(0, FaultConfig::none());
        let none = c.chunk_store().extent_manager().scheduler().none();
        let out = c.put(Stream::Data, b"raw", &none).unwrap();
        pump(&c);
        c.get(&out.locator).unwrap();
        c.get(&out.locator).unwrap();
        assert_eq!(c.stats().hits, 0);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn drain_after_reclaim_prevents_stale_reads() {
        let c = setup(4096, FaultConfig::none());
        let none = c.chunk_store().extent_manager().scheduler().none();
        // Unreferenced chunk: reclamation drops it and resets the extent.
        let out = c.put(Stream::Data, b"doomed", &none).unwrap();
        pump(&c);
        c.get(&out.locator).unwrap(); // populate the read cache
        drop(out.guard);
        struct NoneLive;
        impl Referencer for NoneLive {
            fn is_live(&self, _l: &Locator) -> bool {
                false
            }
            fn relocated(&self, _o: &Locator, _n: &Locator, d: &Dependency) -> Dependency {
                d.clone()
            }
            fn quiesce(&self) -> Result<Option<Dependency>, ChunkError> {
                Ok(None)
            }
        }
        c.reclaim(out.locator.extent, Stream::Data, &NoneLive).unwrap().unwrap();
        // Fixed cache: the stale entry is gone; the get fails cleanly.
        assert!(c.get(&out.locator).is_err());
    }

    #[test]
    fn b2_seeded_cache_serves_stale_data_after_reclaim() {
        let c = setup(4096, FaultConfig::seed(BugId::B2CacheNotDrained));
        let none = c.chunk_store().extent_manager().scheduler().none();
        let out = c.put(Stream::Data, b"stale!", &none).unwrap();
        pump(&c);
        c.get(&out.locator).unwrap(); // populate the read cache
        drop(out.guard);
        struct NoneLive;
        impl Referencer for NoneLive {
            fn is_live(&self, _l: &Locator) -> bool {
                false
            }
            fn relocated(&self, _o: &Locator, _n: &Locator, d: &Dependency) -> Dependency {
                d.clone()
            }
            fn quiesce(&self) -> Result<Option<Dependency>, ChunkError> {
                Ok(None)
            }
        }
        c.reclaim(out.locator.extent, Stream::Data, &NoneLive).unwrap().unwrap();
        // The buggy cache still serves the dead chunk.
        assert_eq!(*c.get(&out.locator).unwrap(), b"stale!");
        // The underlying store agrees it is gone.
        assert!(c.chunk_store().get(&out.locator).is_err());
    }

    #[test]
    fn b8_seeded_put_dependency_misses_pointer_update() {
        use shardstore_vdisk::CrashPlan;
        let c = setup(1024, FaultConfig::seed(BugId::B8MissingPointerDependency));
        let none = c.chunk_store().extent_manager().scheduler().none();
        let out = c.put(Stream::Data, b"early", &none).unwrap();
        // Issue and flush only the data write, not the superblock update:
        // the buggy dependency claims persistence.
        let sched = c.chunk_store().extent_manager().scheduler().clone();
        sched.issue_ready(1).unwrap();
        sched.flush_issued().unwrap();
        assert!(out.dep.is_persistent(), "buggy dep persists without the pointer update");
        // Crash: after recovery the write pointer does not cover the data.
        sched.crash(&CrashPlan::LoseAll);
        let em2 = ExtentManager::recover(sched, FaultConfig::none()).unwrap();
        assert_eq!(em2.write_pointer(out.locator.extent), 0);
    }

    #[test]
    fn clear_empties_cache() {
        let c = setup(1024, FaultConfig::none());
        let none = c.chunk_store().extent_manager().scheduler().none();
        let out = c.put(Stream::Data, b"x", &none).unwrap();
        pump(&c);
        c.get(&out.locator).unwrap();
        assert!(c.cached_bytes() > 0);
        c.clear();
        assert_eq!(c.cached_bytes(), 0);
    }

    #[test]
    fn oversized_payload_is_not_cached() {
        let c = setup(10, FaultConfig::none());
        let none = c.chunk_store().extent_manager().scheduler().none();
        let out = c.put(Stream::Data, &[9u8; 50], &none).unwrap();
        pump(&c);
        assert_eq!(c.cached_bytes(), 0);
        assert_eq!(*c.get(&out.locator).unwrap(), vec![9u8; 50]);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn segment_count_scales_with_capacity() {
        assert_eq!(segment_count(0), 1);
        assert_eq!(segment_count(512), 1);
        assert_eq!(segment_count(8192), 2);
        assert_eq!(segment_count(1 << 20), MAX_SEGMENTS);
        let c = setup(1 << 20, FaultConfig::none());
        assert_eq!(c.segment_count(), MAX_SEGMENTS);
        let c = setup(512, FaultConfig::none());
        assert_eq!(c.segment_count(), 1);
    }

    #[test]
    fn sharded_cache_aggregates_stats_and_bytes() {
        let c = setup(1 << 20, FaultConfig::none());
        assert!(c.segment_count() > 1);
        let none = c.chunk_store().extent_manager().scheduler().none();
        let outs: Vec<_> =
            (0..20u8).map(|i| c.put(Stream::Data, &[i; 30], &none).unwrap()).collect();
        pump(&c);
        for out in &outs {
            c.get(&out.locator).unwrap(); // miss + populate
        }
        for (i, out) in outs.iter().enumerate() {
            assert_eq!(*c.get(&out.locator).unwrap(), vec![i as u8; 30]);
        }
        let stats = c.stats();
        assert_eq!(stats.misses, 20);
        assert_eq!(stats.hits, 20);
        assert_eq!(c.cached_bytes(), 20 * 30);
        // Entries landed in more than one segment.
        let used: std::collections::BTreeSet<usize> = outs
            .iter()
            .map(|o| o.locator.position_hash() as usize % c.segment_count())
            .collect();
        assert!(used.len() > 1, "position hash spread entries across segments");
    }

    #[test]
    fn sharded_drain_sweeps_every_segment() {
        let c = setup(1 << 20, FaultConfig::none());
        let none = c.chunk_store().extent_manager().scheduler().none();
        let outs: Vec<_> =
            (0..10u8).map(|i| c.put(Stream::Data, &[i; 25], &none).unwrap()).collect();
        pump(&c);
        for out in &outs {
            c.get(&out.locator).unwrap();
        }
        assert!(c.cached_bytes() > 0);
        // Draining every extent the puts landed on must empty the share of
        // every segment, not just the first one.
        let extents: std::collections::BTreeSet<_> =
            outs.iter().map(|o| o.locator.extent).collect();
        for extent in extents {
            c.drain_extent(extent);
        }
        assert_eq!(c.cached_bytes(), 0);
        assert_eq!(c.stats().drained, 10);
    }
}
