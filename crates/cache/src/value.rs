//! Zero-copy value handles for the read hot path.
//!
//! A shard's value is stored as one or more chunks; the cache already
//! hands payloads out as `Arc<Vec<u8>>`. [`ValueBuf`] is a rope over
//! those shared payloads: `Store::get`/`scan` assemble a value by
//! *collecting the Arcs* instead of `extend_from_slice`-ing the bytes
//! into a fresh `Vec<u8>`, and the wire encoder writes the segments
//! straight into the response frame — zero value memcpys between a warm
//! cache and the wire.
//!
//! Equality is content-based (segmentation is an implementation detail),
//! so a decoded `ValueBuf` built from one contiguous segment compares
//! equal to the multi-chunk original — roundtrip properties hold across
//! re-chunking.

use std::fmt;
use std::sync::Arc;

/// A contiguous logical byte string backed by shared, possibly
/// discontiguous segments.
#[derive(Clone, Default)]
pub struct ValueBuf {
    segments: Vec<Arc<Vec<u8>>>,
    len: usize,
}

impl ValueBuf {
    /// An empty value.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps one shared payload without copying.
    pub fn from_arc(segment: Arc<Vec<u8>>) -> Self {
        let len = segment.len();
        Self { segments: vec![segment], len }
    }

    /// Appends a shared payload without copying. Empty segments are
    /// dropped so the segment list mirrors the logical content.
    pub fn push_segment(&mut self, segment: Arc<Vec<u8>>) {
        if segment.is_empty() {
            return;
        }
        self.len += segment.len();
        self.segments.push(segment);
    }

    /// Total logical length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the value has no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of backing segments (diagnostics / copy accounting).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The backing segments, in order.
    pub fn segments(&self) -> impl Iterator<Item = &[u8]> {
        self.segments.iter().map(|s| s.as_slice())
    }

    /// Materializes the value as one contiguous `Vec<u8>` (the one
    /// deliberate copy, for callers that need owned contiguous bytes).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for s in &self.segments {
            out.extend_from_slice(s);
        }
        out
    }
}

impl From<Vec<u8>> for ValueBuf {
    fn from(bytes: Vec<u8>) -> Self {
        if bytes.is_empty() {
            Self::new()
        } else {
            Self::from_arc(Arc::new(bytes))
        }
    }
}

impl From<&[u8]> for ValueBuf {
    fn from(bytes: &[u8]) -> Self {
        bytes.to_vec().into()
    }
}

impl PartialEq for ValueBuf {
    fn eq(&self, other: &Self) -> bool {
        if self.len != other.len {
            return false;
        }
        let mut a = self.segments().flatten();
        let mut b = other.segments().flatten();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (x, y) if x == y => {}
                _ => return false,
            }
        }
    }
}

impl Eq for ValueBuf {}

impl PartialEq<[u8]> for ValueBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.len == other.len() && self.segments().flatten().eq(other.iter())
    }
}

impl PartialEq<Vec<u8>> for ValueBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self == other.as_slice()
    }
}

impl fmt::Debug for ValueBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ValueBuf")
            .field("len", &self.len)
            .field("segments", &self.segments.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_segments_without_copying() {
        let seg = Arc::new(vec![1u8, 2, 3]);
        let v = ValueBuf::from_arc(Arc::clone(&seg));
        // The segment is shared, not copied: two owners of one allocation.
        assert_eq!(Arc::strong_count(&seg), 2);
        assert_eq!(v.len(), 3);
        assert_eq!(v.segment_count(), 1);
        assert_eq!(v.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn equality_ignores_segmentation() {
        let mut a = ValueBuf::new();
        a.push_segment(Arc::new(vec![1, 2]));
        a.push_segment(Arc::new(vec![3, 4, 5]));
        let b: ValueBuf = vec![1u8, 2, 3, 4, 5].into();
        assert_eq!(a, b);
        assert_eq!(a, vec![1u8, 2, 3, 4, 5]);
        assert!(a != *[1u8, 2, 3, 4].as_slice());
        assert!(a != *[1u8, 2, 3, 4, 6].as_slice());
    }

    #[test]
    fn empty_values() {
        let v = ValueBuf::new();
        assert!(v.is_empty());
        assert_eq!(v.segment_count(), 0);
        let e: ValueBuf = Vec::new().into();
        assert_eq!(v, e);
        let mut w = ValueBuf::new();
        w.push_segment(Arc::new(Vec::new()));
        assert_eq!(w.segment_count(), 0, "empty segments are dropped");
    }
}
