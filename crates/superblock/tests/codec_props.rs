//! Property-based tests of the superblock codec: the §7 panic-freedom
//! property over arbitrary bytes, plus round trips.

use proptest::prelude::*;
use shardstore_superblock::decode_superblock;
use shardstore_vdisk::codec::{Reader, Writer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes never panic the superblock decoder (§7).
    #[test]
    fn superblock_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = decode_superblock(&bytes);
    }

    /// Flipping any single bit of a valid superblock is detected.
    #[test]
    fn superblock_bit_flips_detected(flip_byte in 0usize..200, flip_bit in 0u8..8) {
        // Build a valid superblock image through the extent manager.
        use shardstore_dependency::IoScheduler;
        use shardstore_faults::FaultConfig;
        use shardstore_superblock::{ExtentManager, Owner, SUPERBLOCK_EXTENT};
        use shardstore_vdisk::{Disk, Geometry};
        let disk = Disk::new(Geometry::small());
        let sched = IoScheduler::new(std::sync::Arc::clone(&disk));
        let em = ExtentManager::format(sched, FaultConfig::none());
        em.allocate(Owner::Data).unwrap();
        em.pump().unwrap();
        let slot_size = disk.geometry().extent_size() / 2;
        let valid = disk.read(SUPERBLOCK_EXTENT, 0, slot_size).unwrap();
        prop_assume!(decode_superblock(&valid).is_ok());
        let body_len = valid.iter().rposition(|b| *b != 0).map(|i| i + 1).unwrap_or(0);
        let target = flip_byte % body_len;
        let mut corrupt = valid.clone();
        corrupt[target] ^= 1 << flip_bit;
        prop_assert!(
            decode_superblock(&corrupt).is_err(),
            "flip at byte {target} bit {flip_bit} undetected"
        );
    }

    /// The generic reader/writer primitives round-trip arbitrary values.
    #[test]
    fn codec_roundtrip(a in any::<u8>(), b in any::<u16>(), c in any::<u32>(), d in any::<u64>(),
                       bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
        let mut w = Writer::new();
        w.u8(a).u16(b).u32(c).u64(d).var_bytes(&bytes);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.u8().unwrap(), a);
        prop_assert_eq!(r.u16().unwrap(), b);
        prop_assert_eq!(r.u32().unwrap(), c);
        prop_assert_eq!(r.u64().unwrap(), d);
        prop_assert_eq!(r.var_bytes().unwrap(), &bytes[..]);
        prop_assert_eq!(r.remaining(), 0);
    }

    /// Reader operations on arbitrary bytes never panic (§7).
    #[test]
    fn reader_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300),
                           ops in proptest::collection::vec(0u8..6, 0..20)) {
        let mut r = Reader::new(&bytes);
        for op in ops {
            match op {
                0 => { let _ = r.u8(); }
                1 => { let _ = r.u16(); }
                2 => { let _ = r.u32(); }
                3 => { let _ = r.u64(); }
                4 => { let _ = r.var_bytes(); }
                _ => { let _ = r.expect(b"XY"); }
            }
        }
    }
}
