//! The superblock and extent manager: soft write pointers, extent
//! ownership, and the append-only discipline (§2.1 "Append-only IO").
//!
//! ShardStore supports conventional disks by implementing the extent
//! `append` operation itself: it tracks an in-memory *soft write pointer*
//! per extent, translates appends into positioned writes, and persists the
//! soft pointers in a superblock flushed on a regular cadence. This crate
//! is that machinery:
//!
//! - [`ExtentManager::append`] reserves space at an extent's soft pointer,
//!   submits the data write, and folds the pointer update into the pending
//!   superblock write (coalescing many appends into one superblock IO, as
//!   in Fig. 2). The returned [`Dependency`] persists only once *both* the
//!   data and a superblock covering its pointer have persisted.
//! - [`ExtentManager::reset`] implements the extent reset operation:
//!   pointer back to zero, making all data on the extent unreadable even
//!   though it is not physically overwritten (reads beyond the write
//!   pointer are forbidden, enforced by [`ExtentManager::read`]). The
//!   caller supplies the dependency that must persist *before* the reset
//!   does (e.g. chunk evacuations during reclamation).
//! - The superblock itself is stored in two alternating slots on extent 0
//!   with generation numbers and CRCs, so a torn superblock write is
//!   detected and recovery falls back to the previous generation.
//! - A bounded [buffer pool] limits in-flight superblock updates; waiting
//!   for a permit is the mechanism behind the paper's issue #12 deadlock.
//!
//! Seeded faults: [`BugId::B6OwnershipDependency`],
//! [`BugId::B7SoftHardPointerMismatch`], [`BugId::B12SuperblockDeadlock`].
//!
//! [buffer pool]: ExtentManager::append

use std::fmt;
use std::sync::Arc;

use shardstore_conc::sync::{Condvar, Mutex};
use shardstore_dependency::{Dependency, IoScheduler};
use shardstore_faults::{coverage, BugId, FaultConfig};
use shardstore_obs::TraceEvent;
use shardstore_vdisk::codec::{crc32, CodecError, Reader, Writer};
use shardstore_vdisk::{ExtentId, IoError};

/// The extent reserved for the superblock.
pub const SUPERBLOCK_EXTENT: ExtentId = ExtentId(0);

const SB_MAGIC: &[u8; 4] = b"SSSB";
const SB_VERSION: u16 = 1;

/// Which subsystem an extent belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Owner {
    /// Unallocated.
    Free,
    /// Reserved for the superblock itself.
    Superblock,
    /// Shard data chunks.
    Data,
    /// Chunks backing the LSM tree.
    LsmData,
    /// LSM-tree metadata records.
    Metadata,
}

impl Owner {
    fn to_u8(self) -> u8 {
        match self {
            Owner::Free => 0,
            Owner::Superblock => 1,
            Owner::Data => 2,
            Owner::LsmData => 3,
            Owner::Metadata => 4,
        }
    }

    fn from_u8(v: u8) -> Result<Self, CodecError> {
        Ok(match v {
            0 => Owner::Free,
            1 => Owner::Superblock,
            2 => Owner::Data,
            3 => Owner::LsmData,
            4 => Owner::Metadata,
            _ => return Err(CodecError::BadValue),
        })
    }
}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Owner::Free => "free",
            Owner::Superblock => "superblock",
            Owner::Data => "data",
            Owner::LsmData => "lsm-data",
            Owner::Metadata => "metadata",
        };
        write!(f, "{s}")
    }
}

/// Result of a successful [`ExtentManager::append`].
#[derive(Debug, Clone)]
pub struct AppendOutcome {
    /// Byte offset at which the data landed.
    pub offset: usize,
    /// Dependency of the raw data write alone. Use this when building
    /// ordering barriers (e.g. reclamation reset barriers): superblock
    /// content is a complete table, so any later superblock generation
    /// covers this append's pointer, and threading the full dependency
    /// into a barrier that the pending superblock write later absorbs
    /// would create a cycle.
    pub data: Dependency,
    /// Full client-facing dependency: persists once the data *and* a
    /// superblock generation covering its write pointer have persisted.
    pub dep: Dependency,
}

/// Per-extent soft state as recorded in the superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtentInfo {
    /// Next valid append position (bytes).
    pub write_ptr: usize,
    /// Owning subsystem.
    pub owner: Owner,
}

/// Errors from the extent manager.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtentError {
    /// Underlying disk IO failed.
    Io(IoError),
    /// The append does not fit before the end of the extent.
    ExtentFull {
        /// Target extent.
        extent: ExtentId,
        /// Bytes requested.
        requested: usize,
        /// Bytes available.
        available: usize,
    },
    /// A read crossed the extent's soft write pointer.
    BeyondWritePointer {
        /// Target extent.
        extent: ExtentId,
        /// Requested end offset.
        end: usize,
        /// Current soft write pointer.
        write_ptr: usize,
    },
    /// The operation targeted an extent with the wrong owner.
    WrongOwner {
        /// Target extent.
        extent: ExtentId,
        /// Actual owner.
        owner: Owner,
    },
    /// No free extent was available for allocation.
    NoFreeExtent,
    /// Both superblock slots were invalid during recovery.
    CorruptSuperblock,
    /// The extent has permanently failed and is quarantined: appends are
    /// re-routed elsewhere, and its data is only reachable through
    /// degraded-mode fallbacks (cache, re-replicated copies).
    Quarantined {
        /// The quarantined extent.
        extent: ExtentId,
    },
}

impl fmt::Display for ExtentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtentError::Io(e) => write!(f, "io error: {e}"),
            ExtentError::ExtentFull { extent, requested, available } => {
                write!(f, "{extent} full: requested {requested}, available {available}")
            }
            ExtentError::BeyondWritePointer { extent, end, write_ptr } => {
                write!(f, "read beyond write pointer on {extent}: end {end} > ptr {write_ptr}")
            }
            ExtentError::WrongOwner { extent, owner } => {
                write!(f, "{extent} has wrong owner {owner}")
            }
            ExtentError::NoFreeExtent => write!(f, "no free extent"),
            ExtentError::CorruptSuperblock => write!(f, "both superblock slots corrupt"),
            ExtentError::Quarantined { extent } => {
                write!(f, "{extent} is quarantined after a permanent fault")
            }
        }
    }
}

impl std::error::Error for ExtentError {}

impl From<IoError> for ExtentError {
    fn from(e: IoError) -> Self {
        ExtentError::Io(e)
    }
}

#[derive(Debug)]
struct SbState {
    extents: Vec<ExtentInfo>,
    /// Per-extent reset gate: the superblock write recording the extent's
    /// last reset. Appends into the reused space must not reach the disk
    /// before the reset has persisted — otherwise a crash can recover an
    /// older superblock (pointer still covering the pre-reset data) with
    /// the old bytes already overwritten, leaving a persisted index
    /// pointing at foreign data (§2.1's reset-ordering obligation).
    reset_gates: Vec<Option<Dependency>>,
    generation: u64,
    /// Slot (0 or 1) the *next* superblock write should go to.
    next_slot: u8,
    /// The currently amendable (pending, unissued) superblock write and
    /// the generation stamped into it. Amendments must re-encode with the
    /// *same* generation — stamping a fresh one without reserving it
    /// would let a later write share the generation with different
    /// content, making recovery's pick ambiguous.
    pending_sb: Option<Dependency>,
    pending_sb_gen: u64,
    /// The most recent superblock write (pending or issued). Every new
    /// superblock write depends on its predecessor: generations form a
    /// log, and without this write-after-write edge an older generation
    /// whose data dependencies resolve late can reach its slot *after* a
    /// newer generation wrote there, resurrecting stale pointers.
    last_sb_write: Option<Dependency>,
    /// Superblock writes issued but possibly not yet persistent, holding
    /// buffer-pool permits.
    inflight_sb: Vec<Dependency>,
    /// Set once this manager was created by crash recovery (used by the
    /// seeded bug B6).
    recovered: bool,
    /// Extents allocated since recovery (used by the seeded bug B6: the
    /// buggy superblock encoding dropped their ownership change).
    allocated_since_recovery: std::collections::BTreeSet<u32>,
    /// Extents quarantined after a permanent (`Failed`) fault. In-memory
    /// only: `fail_always` survives crashes, so recovery re-discovers the
    /// set lazily the first time a dead extent is touched. Quarantined
    /// extents are never appended to, never allocated, and never reset.
    quarantined: std::collections::BTreeSet<u32>,
}

/// The extent manager. Cheap to clone; all clones share state.
#[derive(Clone)]
pub struct ExtentManager {
    core: Arc<EmCore>,
}

struct EmCore {
    sched: IoScheduler,
    faults: FaultConfig,
    state: Mutex<SbState>,
    /// Buffer-pool permits for in-flight superblock updates.
    pool: Mutex<usize>,
    pool_cv: Condvar,
    pool_size: usize,
}

impl fmt::Debug for ExtentManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.core.state.lock();
        f.debug_struct("ExtentManager")
            .field("generation", &st.generation)
            .field("extents", &st.extents.len())
            .finish()
    }
}

fn encode_superblock(extents: &[ExtentInfo], generation: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.bytes(SB_MAGIC).u16(SB_VERSION).u64(generation).u32(extents.len() as u32);
    for e in extents {
        w.u32(e.write_ptr as u32);
        w.u8(e.owner.to_u8());
    }
    let crc = crc32(w.as_bytes());
    w.u32(crc);
    w.into_bytes()
}

/// Decodes one superblock slot. Returns the extent table and generation.
///
/// Never panics on corrupt input (§7: on-disk bytes are untrusted).
pub fn decode_superblock(bytes: &[u8]) -> Result<(Vec<ExtentInfo>, u64), CodecError> {
    let mut r = Reader::new(bytes);
    r.expect(SB_MAGIC)?;
    let version = r.u16()?;
    if version != SB_VERSION {
        return Err(CodecError::BadValue);
    }
    let generation = r.u64()?;
    let count = r.u32()? as usize;
    // Each entry is 5 bytes; validate before looping so a corrupt count
    // cannot cause a huge allocation.
    if count.checked_mul(5).map(|n| n + 4 > r.remaining()).unwrap_or(true) {
        return Err(CodecError::BadLength);
    }
    let body_end = r.position() + count * 5;
    let mut extents = Vec::with_capacity(count);
    for _ in 0..count {
        let write_ptr = r.u32()? as usize;
        let owner = Owner::from_u8(r.u8()?)?;
        extents.push(ExtentInfo { write_ptr, owner });
    }
    let crc = r.u32()?;
    if crc32(&bytes[..body_end]) != crc {
        return Err(CodecError::BadChecksum);
    }
    Ok((extents, generation))
}

impl ExtentManager {
    /// Default buffer-pool size for in-flight superblock updates.
    pub const DEFAULT_POOL_SIZE: usize = 8;

    /// Creates a manager for a freshly formatted disk: extent 0 owned by
    /// the superblock, everything else free.
    pub fn format(sched: IoScheduler, faults: FaultConfig) -> Self {
        Self::format_with_pool(sched, faults, Self::DEFAULT_POOL_SIZE)
    }

    /// [`ExtentManager::format`] with an explicit buffer-pool size (small
    /// pools make the issue #12 deadlock reachable in tests).
    ///
    /// # Panics
    ///
    /// Panics if the geometry cannot hold a superblock: each of the two
    /// alternating slots occupies half of extent 0 and must fit the
    /// encoded extent table (22 bytes of header/CRC plus 5 bytes per
    /// extent).
    pub fn format_with_pool(sched: IoScheduler, faults: FaultConfig, pool_size: usize) -> Self {
        let geometry = sched.disk().geometry();
        let needed = 22 + 5 * geometry.extent_count as usize;
        assert!(
            geometry.extent_size() / 2 >= needed,
            "superblock slot too small: {} bytes per slot, {} needed for {} extents              (use larger extents or fewer of them)",
            geometry.extent_size() / 2,
            needed,
            geometry.extent_count
        );
        let count = sched.disk().geometry().extent_count as usize;
        let mut extents = vec![ExtentInfo { write_ptr: 0, owner: Owner::Free }; count];
        extents[SUPERBLOCK_EXTENT.0 as usize].owner = Owner::Superblock;
        Self::build(sched, faults, extents, 0, false, pool_size)
    }

    /// Recovers the extent table from the on-disk superblock after a crash
    /// or clean reboot: reads both slots, validates magic/CRC, and adopts
    /// the newest valid generation. A completely blank disk recovers to
    /// the formatted state.
    pub fn recover(sched: IoScheduler, faults: FaultConfig) -> Result<Self, ExtentError> {
        Self::recover_with_pool(sched, faults, Self::DEFAULT_POOL_SIZE)
    }

    /// [`ExtentManager::recover`] with an explicit buffer-pool size.
    pub fn recover_with_pool(
        sched: IoScheduler,
        faults: FaultConfig,
        pool_size: usize,
    ) -> Result<Self, ExtentError> {
        let disk = Arc::clone(sched.disk());
        let slot_size = disk.geometry().extent_size() / 2;
        let mut best: Option<(Vec<ExtentInfo>, u64, u8)> = None;
        let mut any_bytes = false;
        let mut both_slots_unparseable = true;
        for slot in 0..2u8 {
            let bytes = disk.read(SUPERBLOCK_EXTENT, slot as usize * slot_size, slot_size)?;
            if bytes.iter().any(|b| *b != 0) {
                any_bytes = true;
            }
            if bytes.starts_with(SB_MAGIC) {
                // A superblock was (at least partially) written here.
                both_slots_unparseable = false;
            }
            match decode_superblock(&bytes) {
                Ok((extents, generation)) => {
                    coverage::hit("superblock.recover.valid_slot");
                    if best.as_ref().map(|(_, g, _)| generation > *g).unwrap_or(true) {
                        best = Some((extents, generation, slot));
                    }
                }
                Err(_) => coverage::hit("superblock.recover.invalid_slot"),
            }
        }
        match best {
            Some((mut extents, generation, slot)) => {
                let count = disk.geometry().extent_count as usize;
                extents.resize(count, ExtentInfo { write_ptr: 0, owner: Owner::Free });
                // Free extents must not advertise data: zero their
                // pointers so stale entries cannot resurrect garbage.
                for e in extents.iter_mut() {
                    if e.owner == Owner::Free {
                        e.write_ptr = 0;
                    }
                }
                let next_slot = 1 - slot;
                let mut em = Self::build(sched, faults, extents, generation, true, pool_size);
                Arc::get_mut(&mut em.core).expect("sole owner").state.get_mut().next_slot =
                    next_slot;
                Ok(em)
            }
            None => {
                if both_slots_unparseable {
                    if !any_bytes {
                        coverage::hit("superblock.recover.blank_disk");
                    }
                    // No superblock ever persisted, but data reached the
                    // disk (e.g. a crash lost the very first superblock
                    // write). Nothing can have been acknowledged —
                    // acknowledgement requires superblock coverage — so
                    // the residue is from a dead incarnation. Wipe it:
                    // otherwise stale metadata records could outlive the
                    // reformat and win recovery's sequence-number race.
                    coverage::hit("superblock.recover.wipe_dead_incarnation");
                    let geometry = disk.geometry();
                    let zeros = vec![0u8; geometry.extent_size()];
                    // Per-extent, fault tolerant: a permanently failed
                    // extent cannot be wiped (or flushed) — skip it; it
                    // is quarantined the first time it is touched, so its
                    // residue is unreachable anyway. Transient failures
                    // get a bounded retry.
                    let with_retry = |op: &dyn Fn() -> Result<(), IoError>| {
                        let mut result = op();
                        let mut tries = 0;
                        while matches!(result, Err(IoError::Injected { .. })) && tries < 3 {
                            tries += 1;
                            result = op();
                        }
                        result
                    };
                    for e in 0..geometry.extent_count {
                        let ext = ExtentId(e);
                        match with_retry(&|| disk.write(ext, 0, &zeros)) {
                            Ok(()) => {}
                            Err(IoError::Failed { .. }) => continue,
                            Err(err) => return Err(err.into()),
                        }
                        match with_retry(&|| disk.flush_extent(ext)) {
                            Ok(()) | Err(IoError::Failed { .. }) => {}
                            Err(err) => return Err(err.into()),
                        }
                    }
                    return Ok(Self::format_with_pool(sched, faults, pool_size));
                }
                Err(ExtentError::CorruptSuperblock)
            }
        }
    }

    fn build(
        sched: IoScheduler,
        faults: FaultConfig,
        extents: Vec<ExtentInfo>,
        generation: u64,
        recovered: bool,
        pool_size: usize,
    ) -> Self {
        Self {
            core: Arc::new(EmCore {
                sched,
                faults,
                state: Mutex::new(SbState {
                    reset_gates: vec![None; extents.len()],
                    extents,
                    generation,
                    next_slot: 0,
                    pending_sb: None,
                    pending_sb_gen: 0,
                    last_sb_write: None,
                    inflight_sb: Vec::new(),
                    recovered,
                    allocated_since_recovery: std::collections::BTreeSet::new(),
                    quarantined: std::collections::BTreeSet::new(),
                }),
                pool: Mutex::new(pool_size),
                pool_cv: Condvar::new(),
                pool_size,
            }),
        }
    }

    /// The underlying IO scheduler.
    pub fn scheduler(&self) -> &IoScheduler {
        &self.core.sched
    }

    /// Extent size in bytes.
    pub fn extent_size(&self) -> usize {
        self.core.sched.disk().geometry().extent_size()
    }

    /// Number of extents.
    pub fn extent_count(&self) -> u32 {
        self.core.sched.disk().geometry().extent_count
    }

    /// Current soft write pointer of an extent.
    pub fn write_pointer(&self, extent: ExtentId) -> usize {
        self.core.state.lock().extents[extent.0 as usize].write_ptr
    }

    /// Current owner of an extent.
    pub fn owner(&self, extent: ExtentId) -> Owner {
        self.core.state.lock().extents[extent.0 as usize].owner
    }

    /// Quarantines an extent after a permanent (`Failed`) fault: its
    /// queued writes are failed (they can never succeed and would wedge
    /// everything ordered after them — most damagingly the shared
    /// superblock write), the pending superblock write is unwedged by
    /// pruning its ordering edges onto the lost writes *in place* (its
    /// slot, generation, and amended table are preserved; a replacement
    /// write would take the alternate slot, which holds the newest
    /// durable generation, and a torn replacement could regress recovery
    /// below acknowledged state), and all future appends, reads, resets,
    /// and allocations of the extent are refused. Returns how many
    /// writes were failed. The superblock extent itself cannot be
    /// quarantined — losing it is node death, not a degraded mode.
    pub fn quarantine(&self, extent: ExtentId) -> usize {
        if extent == SUPERBLOCK_EXTENT {
            return 0;
        }
        let newly = self.core.state.lock().quarantined.insert(extent.0);
        if newly {
            coverage::hit("superblock.extent.quarantined");
            let obs = self.core.sched.obs();
            obs.registry().counter("extent.quarantines").inc();
            obs.trace().event(TraceEvent::Quarantine { extent: extent.0 });
        }
        // Idempotent on purpose: writes submitted between the insert and
        // a racing earlier quarantine call are still failed.
        let failed = self.core.sched.fail_extent_writes(extent);
        // Unwedge every pending write ordered after the lost ones — in
        // particular the coalesced superblock write and any index write
        // joined on a dead data dependency. Client durability joins are
        // left unresolved (no lost ack).
        self.core.sched.prune_doomed_pending();
        let pending = self.core.state.lock().pending_sb.clone();
        if let Some(p) = &pending {
            self.core.sched.prune_doomed_deps(p);
        }
        failed
    }

    /// True if the extent is quarantined.
    pub fn is_quarantined(&self, extent: ExtentId) -> bool {
        self.core.state.lock().quarantined.contains(&extent.0)
    }

    /// The quarantined extents, in id order.
    pub fn quarantined(&self) -> Vec<ExtentId> {
        self.core.state.lock().quarantined.iter().map(|e| ExtentId(*e)).collect()
    }

    /// Takes a buffer-pool permit for a new in-flight superblock write,
    /// reclaiming permits whose writes have persisted. In the fixed code
    /// this is called *without* holding the state lock; the seeded bug
    /// B12 acquires it while holding the lock, recreating the issue #12
    /// deadlock.
    fn acquire_permit(&self) {
        let mut permits = self.core.pool.lock();
        loop {
            if *permits > 0 {
                *permits -= 1;
                return;
            }
            coverage::hit("superblock.pool.exhausted");
            permits = self.core.pool_cv.wait(permits);
        }
    }

    /// Fixed-path permit acquisition: when the pool is dry, drive the
    /// writeback pump ourselves to retire in-flight superblock writes
    /// (the backpressure a real writer experiences), instead of waiting
    /// for a background flusher that a sequential caller does not have.
    fn acquire_permit_pumping(&self) {
        for attempt in 0.. {
            {
                let mut permits = self.core.pool.lock();
                if *permits > 0 {
                    *permits -= 1;
                    return;
                }
            }
            coverage::hit("superblock.pool.exhausted");
            // Retire whatever can be retired; transient IO errors leave
            // the writes queued for retry and we keep trying. A permanent
            // fault quarantines the extent — without that, its doomed
            // writes would wedge the superblock chain and this loop would
            // starve to the panic below.
            match self.core.sched.pump() {
                Ok(())
                | Err(IoError::Injected { .. }
                    | IoError::OutOfRange { .. }
                    | IoError::Backend { .. }) => {}
                Err(IoError::Failed { extent }) => {
                    self.quarantine(extent);
                }
            }
            if self.reclaim_permits() == 0 {
                // Nothing retired: let other tasks run (under the model
                // checker this is also the livelock-visible yield point).
                shardstore_conc::thread::yield_now();
            }
            assert!(
                attempt < 100_000,
                "superblock buffer pool starved: in-flight updates cannot retire"
            );
        }
        unreachable!()
    }

    fn release_permits(&self, n: usize) {
        if n == 0 {
            return;
        }
        let mut permits = self.core.pool.lock();
        *permits = (*permits + n).min(self.core.pool_size);
        self.core.pool_cv.notify_all();
    }

    /// Reclaims permits for in-flight superblock writes that have
    /// persisted. Returns how many were reclaimed.
    pub fn reclaim_permits(&self) -> usize {
        let mut st = self.core.state.lock();
        let before = st.inflight_sb.len();
        st.inflight_sb.retain(|d| !d.is_persistent());
        let reclaimed = before - st.inflight_sb.len();
        drop(st);
        self.release_permits(reclaimed);
        reclaimed
    }

    /// Folds the current extent table into the pending superblock write,
    /// or starts a new one. `extra_deps` must persist before the
    /// superblock does (data-before-pointer ordering). Returns the
    /// superblock write's dependency.
    fn record_update(&self, st: &mut SbState, extra_deps: &[Dependency]) -> Dependency {
        self.record_update_inner(st, extra_deps, false).0
    }

    /// Encodes the current table — or, with the B6 fault seeded on a
    /// recovered manager, the historical buggy encoding whose ownership
    /// changes since the reboot are missing (recovery then zeroes those
    /// extents' pointers, losing whatever was written to them).
    fn encode_current(&self, st: &SbState, generation: u64) -> Vec<u8> {
        if self.core.faults.is(BugId::B6OwnershipDependency)
            && st.recovered
            && !st.allocated_since_recovery.is_empty()
        {
            coverage::hit("superblock.b6_stale_ownership");
            let mut table = st.extents.clone();
            for e in &st.allocated_since_recovery {
                table[*e as usize].owner = Owner::Free;
            }
            return encode_superblock(&table, generation);
        }
        encode_superblock(&st.extents, generation)
    }

    /// Like [`ExtentManager::record_update`] but with control over write
    /// coalescing. Barrier-carrying updates (extent resets) must *not*
    /// amend an existing pending superblock write: a pending write may
    /// already be referenced (via append dependencies) by the very barrier
    /// being attached, and amending would create a dependency cycle. With
    /// `force_new`, superblock node dependencies stay acyclic by
    /// construction: amendments only ever add data-write dependencies, and
    /// barrier edges only ever point at strictly older nodes.
    fn record_update_inner(
        &self,
        st: &mut SbState,
        extra_deps: &[Dependency],
        force_new: bool,
    ) -> (Dependency, bool) {
        if !force_new {
            if let Some(pending) = &st.pending_sb {
                // Amend in place, re-encoding the current table under the
                // pending write's own (already reserved) generation.
                let encoded = self.encode_current(st, st.pending_sb_gen);
                if self.core.sched.amend_pending_write(pending, encoded, extra_deps) {
                    coverage::hit("superblock.update.coalesced");
                    return (pending.clone(), false);
                }
            }
        }
        let encoded = self.encode_current(st, st.generation + 1);
        // Need a fresh superblock write: take a pool permit.
        if self.core.faults.is(BugId::B12SuperblockDeadlock) {
            // BUG B12 (seeded): waiting for a permit while holding the
            // state lock. The thread that would free permits (via
            // reclaim_permits → state lock) can never run.
            self.acquire_permit();
        }
        st.generation += 1;
        let slot = st.next_slot;
        st.next_slot = 1 - slot;
        let slot_size = self.extent_size() / 2;
        let mut dep_parts: Vec<Dependency> = extra_deps.to_vec();
        if let Some(prev) = &st.last_sb_write {
            dep_parts.push(prev.clone());
        }
        let dep_in = self.core.sched.join(&dep_parts);
        let dep = self.core.sched.submit_write(
            SUPERBLOCK_EXTENT,
            slot as usize * slot_size,
            encoded,
            &dep_in,
        );
        st.last_sb_write = Some(dep.clone());
        st.pending_sb = Some(dep.clone());
        st.pending_sb_gen = st.generation;
        st.inflight_sb.push(dep.clone());
        coverage::hit("superblock.update.new_write");
        if std::env::var_os("SB_TRACE").is_some() {
            eprintln!(
                "SB new write: gen {} slot {} ptr3={} force_new={}",
                st.generation,
                slot,
                st.extents[3].write_ptr,
                force_new
            );
        }
        (dep, true)
    }

    /// Appends `data` to `extent` at its soft write pointer. The write is
    /// not issued until `dep` persists; the returned dependency persists
    /// once the data *and* a superblock update covering the advanced
    /// pointer have persisted.
    pub fn append(
        &self,
        extent: ExtentId,
        data: &[u8],
        dep: &Dependency,
    ) -> Result<AppendOutcome, ExtentError> {
        if !self.core.faults.is(BugId::B12SuperblockDeadlock) {
            // Fixed code path: take the permit before the state lock so
            // permit waits cannot block permit reclamation, self-pumping
            // if the pool is dry.
            self.reclaim_permits();
            self.acquire_permit_pumping();
        }
        let mut st = self.core.state.lock();
        let size = self.extent_size();
        if st.quarantined.contains(&extent.0) {
            drop(st);
            if !self.core.faults.is(BugId::B12SuperblockDeadlock) {
                self.release_permits(1);
            }
            return Err(ExtentError::Quarantined { extent });
        }
        let info = &st.extents[extent.0 as usize];
        if info.owner == Owner::Free || info.owner == Owner::Superblock {
            let owner = info.owner;
            drop(st);
            if !self.core.faults.is(BugId::B12SuperblockDeadlock) {
                self.release_permits(1);
            }
            return Err(ExtentError::WrongOwner { extent, owner });
        }
        let offset = info.write_ptr;
        // Gate appends into reused space on the reset's persistence; drop
        // the gate once it has persisted (it constrains nothing anymore).
        let reset_gate = match &st.reset_gates[extent.0 as usize] {
            Some(g) if !g.is_persistent() => Some(g.clone()),
            Some(_) => {
                st.reset_gates[extent.0 as usize] = None;
                None
            }
            None => None,
        };
        if offset + data.len() > size {
            drop(st);
            if !self.core.faults.is(BugId::B12SuperblockDeadlock) {
                self.release_permits(1);
            }
            return Err(ExtentError::ExtentFull {
                extent,
                requested: data.len(),
                available: size - offset,
            });
        }
        st.extents[extent.0 as usize].write_ptr = offset + data.len();
        let dep_in = match &reset_gate {
            Some(gate) => {
                coverage::hit("superblock.append.reset_gated");
                dep.and(gate)
            }
            None => dep.clone(),
        };
        let data_dep = self.core.sched.submit_write(extent, offset, data.to_vec(), &dep_in);
        // If the data write is gated on the *pending* superblock write
        // (the reset record itself), amending that write with a
        // dependency on this data would create a cycle: force a fresh
        // superblock write instead.
        let force_new = matches!(
            (&reset_gate, &st.pending_sb),
            (Some(gate), Some(pending)) if gate.same_node(pending)
        );
        let (sb_dep, created_new) =
            self.record_update_inner(&mut st, std::slice::from_ref(&data_dep), force_new);
        drop(st);
        if !self.core.faults.is(BugId::B12SuperblockDeadlock) && !created_new {
            // The update coalesced into an existing pending superblock
            // write; no new in-flight buffer was consumed.
            self.release_permits(1);
        }
        let dep = data_dep.and(&sb_dep);
        Ok(AppendOutcome { offset, data: data_dep, dep })
    }

    /// Appends several payloads to `extent` back to back as one group
    /// commit: each payload gets its own data write (contiguous, so the
    /// scheduler merges them into one disk IO) but all of them share a
    /// *single* superblock update covering the final write pointer —
    /// instead of one superblock round trip per payload. Fails with
    /// [`ExtentError::ExtentFull`] — without appending anything — if the
    /// whole batch does not fit.
    pub fn append_batch(
        &self,
        extent: ExtentId,
        payloads: &[&[u8]],
        dep: &Dependency,
    ) -> Result<Vec<AppendOutcome>, ExtentError> {
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        if !self.core.faults.is(BugId::B12SuperblockDeadlock) {
            self.reclaim_permits();
            self.acquire_permit_pumping();
        }
        let mut st = self.core.state.lock();
        let size = self.extent_size();
        if st.quarantined.contains(&extent.0) {
            drop(st);
            if !self.core.faults.is(BugId::B12SuperblockDeadlock) {
                self.release_permits(1);
            }
            return Err(ExtentError::Quarantined { extent });
        }
        let info = &st.extents[extent.0 as usize];
        if info.owner == Owner::Free || info.owner == Owner::Superblock {
            let owner = info.owner;
            drop(st);
            if !self.core.faults.is(BugId::B12SuperblockDeadlock) {
                self.release_permits(1);
            }
            return Err(ExtentError::WrongOwner { extent, owner });
        }
        let offset = info.write_ptr;
        let total: usize = payloads.iter().map(|p| p.len()).sum();
        if offset + total > size {
            drop(st);
            if !self.core.faults.is(BugId::B12SuperblockDeadlock) {
                self.release_permits(1);
            }
            return Err(ExtentError::ExtentFull {
                extent,
                requested: total,
                available: size - offset,
            });
        }
        let reset_gate = match &st.reset_gates[extent.0 as usize] {
            Some(g) if !g.is_persistent() => Some(g.clone()),
            Some(_) => {
                st.reset_gates[extent.0 as usize] = None;
                None
            }
            None => None,
        };
        st.extents[extent.0 as usize].write_ptr = offset + total;
        let dep_in = match &reset_gate {
            Some(gate) => {
                coverage::hit("superblock.append.reset_gated");
                dep.and(gate)
            }
            None => dep.clone(),
        };
        coverage::hit("superblock.append.batch");
        let mut placed: Vec<(usize, Dependency)> = Vec::with_capacity(payloads.len());
        let mut data_deps: Vec<Dependency> = Vec::with_capacity(payloads.len());
        let mut pos = offset;
        for p in payloads {
            let data_dep = self.core.sched.submit_write(extent, pos, p.to_vec(), &dep_in);
            placed.push((pos, data_dep.clone()));
            data_deps.push(data_dep);
            pos += p.len();
        }
        let force_new = matches!(
            (&reset_gate, &st.pending_sb),
            (Some(gate), Some(pending)) if gate.same_node(pending)
        );
        let (sb_dep, created_new) = self.record_update_inner(&mut st, &data_deps, force_new);
        drop(st);
        if !self.core.faults.is(BugId::B12SuperblockDeadlock) && !created_new {
            self.release_permits(1);
        }
        Ok(placed
            .into_iter()
            .map(|(off, data_dep)| {
                let dep = data_dep.and(&sb_dep);
                AppendOutcome { offset: off, data: data_dep, dep }
            })
            .collect())
    }

    /// Resets an extent: soft write pointer back to zero, making all data
    /// on it unreadable. The reset's superblock update will not persist
    /// until `dep` does — callers pass the dependency of whatever must
    /// survive the reset (e.g. evacuated chunks and their index updates).
    pub fn reset(&self, extent: ExtentId, dep: &Dependency) -> Dependency {
        let mut st = self.core.state.lock();
        if st.quarantined.contains(&extent.0) {
            // A quarantined extent is never reused: keeping its pointer
            // and registry intact is what lets degraded reads stay
            // attributable instead of turning into pointer errors.
            return dep.clone();
        }
        st.extents[extent.0 as usize].write_ptr = 0;
        coverage::hit("superblock.extent.reset");
        {
            let obs = self.core.sched.obs();
            obs.registry().counter("extent.resets").inc();
            obs.trace().event(TraceEvent::ExtentReset { extent: extent.0 });
        }
        if self.core.faults.is(BugId::B7SoftHardPointerMismatch) {
            // BUG B7 (seeded): the reset's superblock update is submitted
            // with no ordering at all — neither the evacuation barrier
            // nor the write chain — so a crash can persist the pointer
            // reset before the data that was supposed to be evacuated off
            // the extent, losing it.
            let encoded = self.encode_current(&st, st.generation + 1);
            st.generation += 1;
            let slot = st.next_slot;
            st.next_slot = 1 - slot;
            let slot_size = self.extent_size() / 2;
            let none = self.core.sched.none();
            let buggy = self.core.sched.submit_write(
                SUPERBLOCK_EXTENT,
                slot as usize * slot_size,
                encoded,
                &none,
            );
            st.pending_sb = Some(buggy.clone());
            st.pending_sb_gen = st.generation;
            st.last_sb_write = Some(buggy.clone());
            st.inflight_sb.push(buggy.clone());
            st.reset_gates[extent.0 as usize] = Some(buggy.clone());
            return buggy;
        }
        let reset_dep = self.record_update_inner(&mut st, std::slice::from_ref(dep), true).0;
        st.reset_gates[extent.0 as usize] = Some(reset_dep.clone());
        reset_dep
    }

    /// Trims an extent's soft write pointer during recovery: a crash can
    /// leave a torn (never-valid) tail below the recovered pointer, and
    /// recovery moves the pointer to the next page boundary past any
    /// residual garbage so later appends start on a fresh page (this is
    /// how the §5 scenario's "second chunk written starting from page 1"
    /// state arises). The change is folded into the next superblock
    /// update lazily.
    pub fn trim_pointer_for_recovery(&self, extent: ExtentId, new_ptr: usize) {
        let mut st = self.core.state.lock();
        let info = &mut st.extents[extent.0 as usize];
        if new_ptr < info.write_ptr {
            coverage::hit("superblock.recover.pointer_trimmed");
            info.write_ptr = new_ptr;
        }
    }

    /// Extends an extent's soft write pointer during recovery, skipping
    /// past torn garbage that reached the disk without its pointer update
    /// (see `trim_pointer_for_recovery` for the inverse direction).
    pub fn extend_pointer_for_recovery(&self, extent: ExtentId, new_ptr: usize) {
        let mut st = self.core.state.lock();
        let info = &mut st.extents[extent.0 as usize];
        if new_ptr > info.write_ptr {
            coverage::hit("superblock.recover.pointer_extended");
            info.write_ptr = new_ptr;
        }
    }

    /// Changes an extent's owner. Returns the dependency of the superblock
    /// update recording the change.
    pub fn set_owner(&self, extent: ExtentId, owner: Owner) -> Dependency {
        let mut st = self.core.state.lock();
        st.extents[extent.0 as usize].owner = owner;
        if owner == Owner::Free {
            st.extents[extent.0 as usize].write_ptr = 0;
            st.allocated_since_recovery.remove(&extent.0);
        } else if st.recovered {
            st.allocated_since_recovery.insert(extent.0);
        }
        self.record_update(&mut st, &[])
    }

    /// Allocates the lowest-numbered free extent to `owner`.
    pub fn allocate(&self, owner: Owner) -> Result<(ExtentId, Dependency), ExtentError> {
        let extent = {
            let st = self.core.state.lock();
            st.extents
                .iter()
                .enumerate()
                .position(|(i, e)| {
                    e.owner == Owner::Free && !st.quarantined.contains(&(i as u32))
                })
                .map(|i| ExtentId(i as u32))
                .ok_or(ExtentError::NoFreeExtent)?
        };
        coverage::hit("superblock.extent.allocate");
        self.core.sched.obs().registry().counter("extent.allocations").inc();
        let dep = self.set_owner(extent, owner);
        Ok((extent, dep))
    }

    /// Extents owned by `owner`, in id order.
    pub fn extents_owned_by(&self, owner: Owner) -> Vec<ExtentId> {
        let st = self.core.state.lock();
        st.extents
            .iter()
            .enumerate()
            .filter(|(_, e)| e.owner == owner)
            .map(|(i, _)| ExtentId(i as u32))
            .collect()
    }

    /// Reads from an extent, enforcing the soft-write-pointer window:
    /// reads beyond the pointer are forbidden even if stale bytes are
    /// still physically present.
    pub fn read(&self, extent: ExtentId, offset: usize, len: usize) -> Result<Vec<u8>, ExtentError> {
        if self.is_quarantined(extent) {
            coverage::hit("superblock.read.quarantined");
            return Err(ExtentError::Quarantined { extent });
        }
        let write_ptr = self.write_pointer(extent);
        if offset + len > write_ptr {
            coverage::hit("superblock.read.beyond_pointer");
            return Err(ExtentError::BeyondWritePointer { extent, end: offset + len, write_ptr });
        }
        // Read through the scheduler so pending (unissued) appends are
        // visible — the soft write pointer already covers them.
        Ok(self.core.sched.read(extent, offset, len)?)
    }

    /// Pumps the IO scheduler until quiescent and reclaims superblock
    /// buffer-pool permits. Equivalent to the background flusher making a
    /// full pass.
    pub fn pump(&self) -> Result<(), ExtentError> {
        // A permanent fault surfacing mid-pump quarantines the extent and
        // the pump resumes: the rest of the queue must still drain. The
        // iteration bound is defensive — each quarantine removes the
        // failing extent's writes, so a pass over every extent suffices.
        let mut attempts = 0u32;
        loop {
            match self.core.sched.pump() {
                Ok(()) => break,
                Err(IoError::Failed { extent })
                    if extent != SUPERBLOCK_EXTENT
                        && attempts <= self.extent_count() =>
                {
                    attempts += 1;
                    self.quarantine(extent);
                }
                Err(e) => return Err(e.into()),
            }
        }
        {
            let mut st = self.core.state.lock();
            // Whatever superblock write was pending has now been issued;
            // future updates need a fresh write.
            if let Some(d) = &st.pending_sb {
                if d.is_persistent() {
                    st.pending_sb = None;
                }
            }
        }
        self.reclaim_permits();
        Ok(())
    }

    /// The fault configuration this manager was built with.
    pub fn faults(&self) -> &FaultConfig {
        &self.core.faults
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shardstore_vdisk::{CrashPlan, Disk, Geometry};

    fn setup() -> ExtentManager {
        let disk = Disk::new(Geometry::small());
        let sched = IoScheduler::new(disk);
        ExtentManager::format(sched, FaultConfig::none())
    }

    #[test]
    fn format_reserves_superblock_extent() {
        let em = setup();
        assert_eq!(em.owner(SUPERBLOCK_EXTENT), Owner::Superblock);
        assert_eq!(em.owner(ExtentId(1)), Owner::Free);
    }

    #[test]
    fn append_advances_pointer_and_persists() {
        let em = setup();
        let (ext, _) = em.allocate(Owner::Data).unwrap();
        let none = em.scheduler().none();
        let out = em.append(ext, b"hello", &none).unwrap();
        let (off, dep) = (out.offset, out.dep);
        assert_eq!(off, 0);
        assert_eq!(em.write_pointer(ext), 5);
        assert!(!dep.is_persistent());
        em.pump().unwrap();
        assert!(dep.is_persistent());
        assert_eq!(em.read(ext, 0, 5).unwrap(), b"hello");
    }

    #[test]
    fn appends_are_sequential() {
        let em = setup();
        let (ext, _) = em.allocate(Owner::Data).unwrap();
        let none = em.scheduler().none();
        let a = em.append(ext, b"aa", &none).unwrap().offset;
        let b = em.append(ext, b"bbb", &none).unwrap().offset;
        assert_eq!((a, b), (0, 2));
        assert_eq!(em.write_pointer(ext), 5);
    }

    #[test]
    fn append_batch_shares_one_superblock_update() {
        let em = setup();
        let (ext, _) = em.allocate(Owner::Data).unwrap();
        em.pump().unwrap();
        let sb_before = em.scheduler().counter("sched.writes_submitted");
        let none = em.scheduler().none();
        let outs = em
            .append_batch(ext, &[b"aa".as_slice(), b"bbb".as_slice(), b"c".as_slice()], &none)
            .unwrap();
        // 3 data writes + exactly 1 superblock update.
        assert_eq!(em.scheduler().counter("sched.writes_submitted") - sb_before, 4);
        assert_eq!(outs.iter().map(|o| o.offset).collect::<Vec<_>>(), vec![0, 2, 5]);
        assert_eq!(em.write_pointer(ext), 6);
        em.pump().unwrap();
        for o in &outs {
            assert!(o.dep.is_persistent());
        }
        assert_eq!(em.read(ext, 0, 6).unwrap(), b"aabbbc");
    }

    #[test]
    fn append_batch_rejects_overflow_without_appending() {
        let em = setup();
        let (ext, _) = em.allocate(Owner::Data).unwrap();
        let none = em.scheduler().none();
        let size = em.extent_size();
        let big = vec![1u8; size - 1];
        assert!(matches!(
            em.append_batch(ext, &[big.as_slice(), b"xy".as_slice()], &none),
            Err(ExtentError::ExtentFull { .. })
        ));
        assert_eq!(em.write_pointer(ext), 0);
    }

    #[test]
    fn append_to_free_extent_is_rejected() {
        let em = setup();
        let none = em.scheduler().none();
        assert!(matches!(
            em.append(ExtentId(2), b"x", &none),
            Err(ExtentError::WrongOwner { .. })
        ));
    }

    #[test]
    fn append_past_extent_end_is_rejected() {
        let em = setup();
        let (ext, _) = em.allocate(Owner::Data).unwrap();
        let none = em.scheduler().none();
        let size = em.extent_size();
        em.append(ext, &vec![1u8; size - 1], &none).unwrap();
        assert!(matches!(
            em.append(ext, &[1, 2], &none),
            Err(ExtentError::ExtentFull { available: 1, .. })
        ));
    }

    #[test]
    fn reads_beyond_write_pointer_are_forbidden() {
        let em = setup();
        let (ext, _) = em.allocate(Owner::Data).unwrap();
        let none = em.scheduler().none();
        em.append(ext, b"abc", &none).unwrap();
        em.pump().unwrap();
        assert!(matches!(
            em.read(ext, 0, 4),
            Err(ExtentError::BeyondWritePointer { .. })
        ));
        assert!(em.read(ext, 0, 3).is_ok());
    }

    #[test]
    fn reset_makes_data_unreadable_and_reuses_space() {
        let em = setup();
        let (ext, _) = em.allocate(Owner::Data).unwrap();
        let none = em.scheduler().none();
        em.append(ext, b"old!", &none).unwrap();
        em.pump().unwrap();
        em.reset(ext, &none);
        assert_eq!(em.write_pointer(ext), 0);
        assert!(em.read(ext, 0, 4).is_err());
        let off = em.append(ext, b"nw", &none).unwrap().offset;
        assert_eq!(off, 0);
        em.pump().unwrap();
        assert_eq!(em.read(ext, 0, 2).unwrap(), b"nw");
    }

    #[test]
    fn recovery_restores_pointers_and_ownership() {
        let em = setup();
        let (ext, _) = em.allocate(Owner::Data).unwrap();
        let none = em.scheduler().none();
        em.append(ext, b"data", &none).unwrap();
        em.pump().unwrap();
        em.scheduler().crash(&CrashPlan::LoseAll);
        let em2 =
            ExtentManager::recover(em.scheduler().clone(), FaultConfig::none()).unwrap();
        assert_eq!(em2.owner(ext), Owner::Data);
        assert_eq!(em2.write_pointer(ext), 4);
        assert_eq!(em2.read(ext, 0, 4).unwrap(), b"data");
    }

    #[test]
    fn unpersisted_append_is_lost_after_crash() {
        let em = setup();
        let (ext, _) = em.allocate(Owner::Data).unwrap();
        em.pump().unwrap();
        let none = em.scheduler().none();
        let dep = em.append(ext, b"data", &none).unwrap().dep;
        // Crash before pumping: pointer update never persisted.
        em.scheduler().crash(&CrashPlan::LoseAll);
        assert!(!dep.is_persistent());
        let em2 =
            ExtentManager::recover(em.scheduler().clone(), FaultConfig::none()).unwrap();
        assert_eq!(em2.write_pointer(ext), 0);
    }

    #[test]
    fn blank_disk_recovers_to_formatted_state() {
        let disk = Disk::new(Geometry::small());
        let sched = IoScheduler::new(disk);
        let em = ExtentManager::recover(sched, FaultConfig::none()).unwrap();
        assert_eq!(em.owner(SUPERBLOCK_EXTENT), Owner::Superblock);
    }

    #[test]
    fn torn_superblock_write_falls_back_to_previous_generation() {
        let em = setup();
        let (ext, _) = em.allocate(Owner::Data).unwrap();
        let none = em.scheduler().none();
        em.append(ext, b"aa", &none).unwrap();
        em.pump().unwrap();
        // Second update in the other slot; corrupt it on disk directly.
        em.append(ext, b"bb", &none).unwrap();
        em.pump().unwrap();
        // Figure out which slot holds the newest generation and corrupt
        // one byte of it (simulating a torn write / bit rot).
        let disk = Arc::clone(em.scheduler().disk());
        let slot_size = disk.geometry().extent_size() / 2;
        let mut newest = (0u8, 0u64);
        for slot in 0..2u8 {
            let bytes = disk.read(SUPERBLOCK_EXTENT, slot as usize * slot_size, slot_size).unwrap();
            if let Ok((_, generation)) = decode_superblock(&bytes) {
                if generation >= newest.1 {
                    newest = (slot, generation);
                }
            }
        }
        disk.write(SUPERBLOCK_EXTENT, newest.0 as usize * slot_size + 6, &[0xFF]).unwrap();
        disk.flush_all().unwrap();
        let em2 =
            ExtentManager::recover(em.scheduler().clone(), FaultConfig::none()).unwrap();
        // Falls back: pointer reflects only the first persisted append.
        assert_eq!(em2.write_pointer(ext), 2);
    }

    #[test]
    fn superblock_codec_roundtrip() {
        let extents = vec![
            ExtentInfo { write_ptr: 0, owner: Owner::Superblock },
            ExtentInfo { write_ptr: 123, owner: Owner::Data },
            ExtentInfo { write_ptr: 7, owner: Owner::Metadata },
        ];
        let bytes = encode_superblock(&extents, 42);
        let (decoded, generation) = decode_superblock(&bytes).unwrap();
        assert_eq!(decoded, extents);
        assert_eq!(generation, 42);
    }

    #[test]
    fn superblock_updates_coalesce() {
        let em = setup();
        let (ext, _) = em.allocate(Owner::Data).unwrap();
        let none = em.scheduler().none();
        // Multiple appends without pumping: pointer updates fold into the
        // same pending superblock write.
        for _ in 0..5 {
            em.append(ext, b"x", &none).unwrap();
        }
        em.pump().unwrap();
        // One allocation update + at most a couple of superblock writes,
        // not one per append.
        let submitted = em.scheduler().counter("sched.writes_submitted");
        assert!(
            submitted <= 5 /* data */ + 3,
            "superblock updates did not coalesce: {submitted} writes submitted"
        );
        assert_eq!(em.write_pointer(ext), 5);
    }

    #[test]
    fn pointer_persists_only_after_data() {
        // Crash after issuing the superblock write but dropping the data
        // write must be impossible by construction: the superblock write
        // depends on the data write. We verify the scheduler never issues
        // the superblock update first.
        let em = setup();
        let (ext, _) = em.allocate(Owner::Data).unwrap();
        em.pump().unwrap();
        let gen_before = {
            let disk = em.scheduler().disk();
            let slot_size = disk.geometry().extent_size() / 2;
            (0..2u8)
                .filter_map(|s| {
                    let b = disk.read(SUPERBLOCK_EXTENT, s as usize * slot_size, slot_size).ok()?;
                    decode_superblock(&b).ok().map(|(_, g)| g)
                })
                .max()
                .unwrap()
        };
        let none = em.scheduler().none();
        em.append(ext, b"zz", &none).unwrap();
        // Issue exactly one write. It must be the data write, because the
        // superblock write depends on it.
        em.scheduler().issue_ready(1).unwrap();
        em.scheduler().crash(&CrashPlan::KeepAll);
        let em2 = ExtentManager::recover(em.scheduler().clone(), FaultConfig::none()).unwrap();
        // The superblock on disk must still be the old generation (pointer
        // 0), never a new pointer without its data.
        let disk = em2.scheduler().disk();
        let slot_size = disk.geometry().extent_size() / 2;
        let max_gen = (0..2u8)
            .filter_map(|s| {
                let b = disk.read(SUPERBLOCK_EXTENT, s as usize * slot_size, slot_size).ok()?;
                decode_superblock(&b).ok().map(|(_, g)| g)
            })
            .max()
            .unwrap();
        assert_eq!(max_gen, gen_before);
        assert_eq!(em2.write_pointer(ext), 0);
    }

    #[test]
    fn decode_superblock_never_panics_on_corrupt_input() {
        // Hand-crafted nasty inputs; the proptest suite covers random ones.
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![0; 3],
            b"SSSB".to_vec(),
            {
                let mut v = b"SSSB".to_vec();
                v.extend_from_slice(&1u16.to_le_bytes());
                v.extend_from_slice(&0u64.to_le_bytes());
                v.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd count
                v
            },
        ];
        for c in cases {
            assert!(decode_superblock(&c).is_err());
        }
    }

    #[test]
    fn b6_seeded_ownership_stale_after_reboot() {
        let em = setup();
        // Persist at least one superblock so recovery takes the
        // recovered-from-disk path rather than the blank-disk path.
        em.allocate(Owner::Data).unwrap();
        em.pump().unwrap();
        em.scheduler().crash(&CrashPlan::LoseAll);
        let em2 = ExtentManager::recover(
            em.scheduler().clone(),
            FaultConfig::seed(BugId::B6OwnershipDependency),
        )
        .unwrap();
        // Allocate a fresh extent and write to it; the buggy superblock
        // encoding omits the new ownership.
        let (ext, _) = em2.allocate(Owner::Data).unwrap();
        let none = em2.scheduler().none();
        let (_, dep) = em2.append(ext, b"doomed", &none).map(|o| (o.offset, o.dep)).unwrap();
        em2.pump().unwrap();
        assert!(dep.is_persistent(), "the append believes it is durable");
        // After another crash, recovery sees the extent as Free (stale
        // ownership) and zeroes its pointer: the durable data is gone.
        em2.scheduler().crash(&CrashPlan::LoseAll);
        let em3 =
            ExtentManager::recover(em2.scheduler().clone(), FaultConfig::none()).unwrap();
        assert_eq!(em3.owner(ext), Owner::Free, "buggy encoding lost the ownership");
        assert_eq!(em3.write_pointer(ext), 0, "the persisted data became unreadable");
    }

    #[test]
    fn b7_seeded_reset_skips_ordering_dependency() {
        let em_fixed = setup();
        let (ext, _) = em_fixed.allocate(Owner::Data).unwrap();
        em_fixed.pump().unwrap();
        let gate = em_fixed.scheduler().promise();
        let reset_dep = em_fixed.reset(ext, &gate.dependency());
        em_fixed.pump().unwrap();
        assert!(!reset_dep.is_persistent(), "fixed reset must wait for its dependency");

        let disk = Disk::new(Geometry::small());
        let sched = IoScheduler::new(disk);
        let em_bug = ExtentManager::format_with_pool(
            sched,
            FaultConfig::seed(BugId::B7SoftHardPointerMismatch),
            8,
        );
        let (ext, _) = em_bug.allocate(Owner::Data).unwrap();
        em_bug.pump().unwrap();
        let gate = em_bug.scheduler().promise();
        let reset_dep = em_bug.reset(ext, &gate.dependency());
        em_bug.pump().unwrap();
        assert!(reset_dep.is_persistent(), "buggy reset persists without its dependency");
    }

    #[test]
    fn append_batch_survives_transient_fault_within_budget() {
        // A transient fault striking the batch's coalesced data IO is
        // absorbed by the scheduler's bounded retry: the whole batch and
        // its single shared superblock update land, and a crash after the
        // pump recovers every payload byte-exactly.
        let em = setup();
        let (ext, _) = em.allocate(Owner::Data).unwrap();
        let none = em.scheduler().none();
        em.append(ext, b"base", &none).unwrap();
        em.pump().unwrap();
        let payloads: Vec<Vec<u8>> =
            (0u8..3).map(|i| vec![0x40 + i; 100]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        em.scheduler().disk().inject_fail_once(ext);
        let outcomes = em.append_batch(ext, &refs, &none).unwrap();
        em.pump().unwrap();
        assert!(em.scheduler().counter("sched.retries") >= 1);
        assert_eq!(em.scheduler().counter("sched.retry_exhausted"), 0);
        for o in &outcomes {
            assert!(o.dep.is_persistent(), "batch ack must cover the retried IO");
        }
        em.scheduler().crash(&CrashPlan::LoseAll);
        let em2 =
            ExtentManager::recover(em.scheduler().clone(), FaultConfig::none()).unwrap();
        assert_eq!(em2.write_pointer(ext), 4 + 300);
        for (o, p) in outcomes.iter().zip(&payloads) {
            assert_eq!(&em2.read(ext, o.offset, p.len()).unwrap(), p);
        }
    }

    #[test]
    fn batch_on_dying_extent_never_acks_and_never_poisons_siblings() {
        // A permanent fault strikes while a batch (three data writes plus
        // one shared superblock pointer update) is in flight. The pump
        // must quarantine the extent and keep going; the batch must never
        // be acknowledged (its data is gone); and a sibling extent's
        // append riding the same pump — and the same coalesced
        // superblock write — must still become durable. After a crash,
        // recovery re-discovers the broken extent (fail_always survives
        // reboots) and must not serve reads from it, while the sibling's
        // data is intact.
        let em = setup();
        let (dead, _) = em.allocate(Owner::Data).unwrap();
        let (live, _) = em.allocate(Owner::Data).unwrap();
        let none = em.scheduler().none();
        em.append(dead, b"base", &none).unwrap();
        em.pump().unwrap();

        em.scheduler().disk().inject_fail_always(dead);
        let refs: [&[u8]; 3] = [&[0xAA; 100], &[0xBB; 100], &[0xCC; 100]];
        let outcomes = em.append_batch(dead, &refs, &none).unwrap();
        let live_out = em.append(live, b"alive", &none).unwrap();
        em.pump().unwrap();

        assert!(em.is_quarantined(dead));
        assert!(!em.is_quarantined(live));
        for o in &outcomes {
            assert!(
                !o.dep.is_persistent(),
                "batch on the dead extent must never be acknowledged"
            );
        }
        assert!(live_out.dep.is_persistent(), "sibling append must not be wedged");
        // The quarantined extent refuses further appends outright.
        assert!(matches!(
            em.append(dead, b"x", &none),
            Err(ExtentError::Quarantined { .. })
        ));

        em.scheduler().crash(&CrashPlan::LoseAll);
        let em2 =
            ExtentManager::recover(em.scheduler().clone(), FaultConfig::none()).unwrap();
        assert_eq!(em2.read(live, 0, 5).unwrap(), b"alive");
        // The hardware fault survives the reboot: the dead extent's bytes
        // are unreadable, never fabricated.
        assert!(em2.read(dead, 0, 4).is_err());
    }
}
