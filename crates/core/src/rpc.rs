//! The RPC wire layer: versioned frames, typed requests/responses, and a
//! typed error surface (§2.1 "RPC interface").
//!
//! Clients interact with ShardStore through a shared RPC interface that
//! steers requests to target disks based on shard ids. The wire codec is
//! hand-rolled and panic-free on arbitrary bytes — request parsing is part
//! of the untrusted input surface §7 of the paper worries about, and the
//! property suite fuzzes [`Request::decode`]/[`Response::decode`]
//! accordingly.
//!
//! Every frame opens with a two-byte magic and a version byte
//! ([`WIRE_MAGIC`], [`WIRE_VERSION`]). A frame carrying an unknown
//! version is *negotiable*: decoding reports
//! [`WireError::UnsupportedVersion`] rather than generic corruption, and
//! the server answers it with a typed [`ErrorCode::Unsupported`] response
//! (encoded at the server's own version) instead of dropping the
//! connection — old clients learn the version gap instead of seeing
//! garbage.
//!
//! Errors cross the wire as an [`RpcError`]: a machine-matchable
//! [`ErrorCode`] plus a human-readable detail string. The conversions
//! from [`StoreError`] (and the layer errors beneath it) are total, so
//! harness oracles can match on codes — in particular the *degraded*
//! cases (quarantined extents) stay distinguishable from data that never
//! existed.
//!
//! The request plane that executes these frames lives in
//! [`crate::engine`]: a router plus per-disk executors replacing the old
//! single-threaded serve loop.

use std::fmt;

use shardstore_chunk::ChunkError;
use shardstore_lsm::LsmError;
use shardstore_obs::json::Json;
use shardstore_superblock::ExtentError;
use shardstore_vdisk::codec::{CodecError, Reader, Writer};

use shardstore_cache::ValueBuf;

use crate::node::Node;
use crate::store::StoreError;

/// Frame magic: every request and response frame starts with these bytes.
pub const WIRE_MAGIC: [u8; 2] = *b"SN";

/// The wire-format version this build speaks.
pub const WIRE_VERSION: u8 = 1;

/// Decoding failures, separating version negotiation from corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The frame is structurally valid enough to carry a version byte,
    /// but the version is one this build does not speak.
    UnsupportedVersion {
        /// The version byte the frame carried.
        got: u8,
    },
    /// The frame is malformed (bad magic, truncation, bad values).
    Codec(CodecError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnsupportedVersion { got } => {
                write!(f, "unsupported wire version {got} (this build speaks {WIRE_VERSION})")
            }
            WireError::Codec(e) => write!(f, "malformed frame: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

fn write_header(w: &mut Writer) {
    w.bytes(&WIRE_MAGIC).u8(WIRE_VERSION);
}

fn read_header(r: &mut Reader<'_>) -> Result<(), WireError> {
    r.expect(&WIRE_MAGIC)?;
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { got: version });
    }
    Ok(())
}

/// A request-plane or control-plane RPC request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Store a shard.
    Put {
        /// Target shard id.
        shard: u128,
        /// Shard payload.
        data: Vec<u8>,
    },
    /// Read a shard.
    Get {
        /// Target shard id.
        shard: u128,
    },
    /// Delete a shard.
    Delete {
        /// Target shard id.
        shard: u128,
    },
    /// List all shards (control plane; fanned out across disks).
    List,
    /// Remove a disk from service (control plane).
    RemoveDisk {
        /// Disk slot index.
        disk: u32,
    },
    /// Return a removed disk to service (control plane).
    ReturnDisk {
        /// Disk slot index.
        disk: u32,
    },
    /// Migrate a shard to another disk (control plane).
    Migrate {
        /// The shard to move.
        shard: u128,
        /// Destination disk slot.
        to_disk: u32,
    },
    /// Bulk-create shards (control plane; fanned out across disks).
    BulkCreate {
        /// The shards to create.
        shards: Vec<(u128, Vec<u8>)>,
    },
    /// Bulk-remove shards (control plane; fanned out across disks).
    BulkRemove {
        /// The shards to remove.
        shards: Vec<u128>,
    },
    /// Range scan with keyset pagination (request plane; fanned out
    /// across disks).
    Scan {
        /// First key of the range, inclusive.
        start: u128,
        /// Last key of the range, inclusive.
        end: u128,
        /// Page size cap; 0 means unlimited.
        limit: u32,
        /// Resume after this key (the `next` of the previous
        /// [`Response::ScanPage`]); `None` starts at `start`.
        continuation: Option<u128>,
    },
    /// Health introspection (control plane): returns a versioned JSON
    /// report of per-disk metrics, queue depths, quarantined extents,
    /// compaction debt, and trace-drop counters. Served by the engine
    /// *without touching the executor queues*, so it answers even while
    /// every data operation is rejected as `Overloaded`.
    Introspect,
}

/// An RPC response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The operation succeeded with no payload.
    Ok,
    /// A get succeeded. The payload is a zero-copy [`ValueBuf`]: on the
    /// server it shares the cache's chunk buffers, and the encoder
    /// writes its segments straight into the frame.
    Data(ValueBuf),
    /// The shard does not exist.
    NotFound,
    /// A listing.
    Shards(Vec<u128>),
    /// One page of a range scan: entries in ascending key order, plus
    /// the continuation to pass to the next [`Request::Scan`] (`None`
    /// when the range is exhausted).
    ScanPage {
        /// The page's `(key, value)` entries, ascending by key.
        entries: Vec<(u128, ValueBuf)>,
        /// Continuation key for the next page, if any entries remain.
        next: Option<u128>,
    },
    /// The operation failed; the payload says how, typed.
    Error(RpcError),
    /// The health report answering [`Request::Introspect`]: a JSON
    /// object (see [`introspect`]) with a top-level `version` field so
    /// consumers can evolve with the schema.
    Introspect {
        /// The rendered JSON health report.
        json: String,
    },
}

impl Response {
    /// Builds an error response from anything convertible to [`RpcError`].
    pub fn error(e: impl Into<RpcError>) -> Self {
        Response::Error(e.into())
    }
}

/// A typed RPC failure: a machine-matchable code plus human detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcError {
    /// What went wrong, coarsely — stable across the wire.
    pub code: ErrorCode,
    /// Human-readable detail (never required for matching).
    pub detail: String,
}

impl RpcError {
    /// Creates an error with a code and a detail string.
    pub fn new(code: ErrorCode, detail: impl Into<String>) -> Self {
        Self { code, detail: detail.into() }
    }
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

impl std::error::Error for RpcError {}

/// The RPC error surface. Every storage-stack error maps onto exactly one
/// of these codes ([`From`] impls below), so oracles and clients match on
/// codes instead of parsing strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ErrorCode {
    /// The request frame failed to decode.
    Malformed = 0,
    /// The request frame carried a wire version this server cannot speak.
    Unsupported = 1,
    /// The target disk executor's admission queue was full; retry later
    /// (typed backpressure).
    Overloaded = 2,
    /// A disk index was out of range for this node.
    NoSuchDisk = 3,
    /// The target store is out of service (disk removed by the control
    /// plane).
    OutOfService = 4,
    /// The data exists but is unreachable: its extent was quarantined
    /// after a permanent fault (degraded mode, §4.4's honest
    /// unavailability).
    Degraded = 5,
    /// Disk space exhausted (no extent can hold the payload).
    NoSpace = 6,
    /// On-disk state failed validation — corruption was detected, never
    /// returned as data.
    Corrupt = 7,
    /// The underlying virtual disk reported an IO failure.
    Io = 8,
    /// An index entry named a chunk that is not live (dangling locator).
    ChunkNotFound = 9,
    /// An extent-level state error (full, wrong owner, read past the
    /// write pointer, no free extent).
    ExtentState = 10,
    /// Recovery could not certify the index (a metadata extent is
    /// quarantined); the node must be re-replicated, not served.
    UncertifiableRecovery = 11,
    /// The request plane has shut down.
    ServerStopped = 12,
}

impl ErrorCode {
    /// Wire byte for this code.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decodes a wire byte, rejecting unknown codes.
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0 => ErrorCode::Malformed,
            1 => ErrorCode::Unsupported,
            2 => ErrorCode::Overloaded,
            3 => ErrorCode::NoSuchDisk,
            4 => ErrorCode::OutOfService,
            5 => ErrorCode::Degraded,
            6 => ErrorCode::NoSpace,
            7 => ErrorCode::Corrupt,
            8 => ErrorCode::Io,
            9 => ErrorCode::ChunkNotFound,
            10 => ErrorCode::ExtentState,
            11 => ErrorCode::UncertifiableRecovery,
            12 => ErrorCode::ServerStopped,
            _ => return None,
        })
    }

    /// Every code, for enumeration in property tests.
    pub const ALL: [ErrorCode; 13] = [
        ErrorCode::Malformed,
        ErrorCode::Unsupported,
        ErrorCode::Overloaded,
        ErrorCode::NoSuchDisk,
        ErrorCode::OutOfService,
        ErrorCode::Degraded,
        ErrorCode::NoSpace,
        ErrorCode::Corrupt,
        ErrorCode::Io,
        ErrorCode::ChunkNotFound,
        ErrorCode::ExtentState,
        ErrorCode::UncertifiableRecovery,
        ErrorCode::ServerStopped,
    ];
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::Unsupported => "unsupported-version",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::NoSuchDisk => "no-such-disk",
            ErrorCode::OutOfService => "out-of-service",
            ErrorCode::Degraded => "degraded",
            ErrorCode::NoSpace => "no-space",
            ErrorCode::Corrupt => "corrupt",
            ErrorCode::Io => "io",
            ErrorCode::ChunkNotFound => "chunk-not-found",
            ErrorCode::ExtentState => "extent-state",
            ErrorCode::UncertifiableRecovery => "uncertifiable-recovery",
            ErrorCode::ServerStopped => "server-stopped",
        };
        f.write_str(s)
    }
}

impl From<&ExtentError> for ErrorCode {
    fn from(e: &ExtentError) -> Self {
        match e {
            ExtentError::Io(_) => ErrorCode::Io,
            ExtentError::ExtentFull { .. }
            | ExtentError::BeyondWritePointer { .. }
            | ExtentError::WrongOwner { .. }
            | ExtentError::NoFreeExtent => ErrorCode::ExtentState,
            ExtentError::CorruptSuperblock => ErrorCode::Corrupt,
            ExtentError::Quarantined { .. } => ErrorCode::Degraded,
        }
    }
}

impl From<&ChunkError> for ErrorCode {
    fn from(e: &ChunkError) -> Self {
        match e {
            ChunkError::Extent(e) => e.into(),
            ChunkError::NotFound(_) => ErrorCode::ChunkNotFound,
            ChunkError::Corrupt(_) => ErrorCode::Corrupt,
            ChunkError::NoSpace { .. } => ErrorCode::NoSpace,
            ChunkError::Degraded(_) => ErrorCode::Degraded,
        }
    }
}

impl From<&LsmError> for ErrorCode {
    fn from(e: &LsmError) -> Self {
        match e {
            LsmError::Chunk(e) => e.into(),
            LsmError::Codec(_) | LsmError::CorruptMetadata => ErrorCode::Corrupt,
            LsmError::UncertifiableRecovery(_) => ErrorCode::UncertifiableRecovery,
        }
    }
}

impl From<&StoreError> for ErrorCode {
    fn from(e: &StoreError) -> Self {
        match e {
            StoreError::Chunk(e) => e.into(),
            StoreError::Lsm(e) => e.into(),
            StoreError::Extent(e) => e.into(),
            StoreError::OutOfService => ErrorCode::OutOfService,
            StoreError::Backend(_) => ErrorCode::Io,
        }
    }
}

macro_rules! rpc_error_from {
    ($($ty:ty),*) => {$(
        impl From<$ty> for RpcError {
            fn from(e: $ty) -> Self {
                RpcError { code: (&e).into(), detail: e.to_string() }
            }
        }
        impl From<&$ty> for RpcError {
            fn from(e: &$ty) -> Self {
                RpcError { code: e.into(), detail: e.to_string() }
            }
        }
    )*};
}
rpc_error_from!(StoreError, LsmError, ChunkError, ExtentError);

impl From<WireError> for RpcError {
    fn from(e: WireError) -> Self {
        let code = match e {
            WireError::UnsupportedVersion { .. } => ErrorCode::Unsupported,
            WireError::Codec(_) => ErrorCode::Malformed,
        };
        RpcError { code, detail: e.to_string() }
    }
}

impl Request {
    /// Encodes the request to wire bytes (a versioned frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        write_header(&mut w);
        match self {
            Request::Put { shard, data } => {
                w.u8(0).bytes(&shard.to_le_bytes()).var_bytes(data);
            }
            Request::Get { shard } => {
                w.u8(1).bytes(&shard.to_le_bytes());
            }
            Request::Delete { shard } => {
                w.u8(2).bytes(&shard.to_le_bytes());
            }
            Request::List => {
                w.u8(3);
            }
            Request::RemoveDisk { disk } => {
                w.u8(4).u32(*disk);
            }
            Request::ReturnDisk { disk } => {
                w.u8(5).u32(*disk);
            }
            Request::Migrate { shard, to_disk } => {
                w.u8(6).bytes(&shard.to_le_bytes()).u32(*to_disk);
            }
            Request::BulkCreate { shards } => {
                w.u8(7).u32(shards.len() as u32);
                for (shard, data) in shards {
                    w.bytes(&shard.to_le_bytes()).var_bytes(data);
                }
            }
            Request::BulkRemove { shards } => {
                w.u8(8).u32(shards.len() as u32);
                for shard in shards {
                    w.bytes(&shard.to_le_bytes());
                }
            }
            Request::Scan { start, end, limit, continuation } => {
                w.u8(9).bytes(&start.to_le_bytes()).bytes(&end.to_le_bytes()).u32(*limit);
                write_opt_u128(&mut w, continuation);
            }
            Request::Introspect => {
                w.u8(10);
            }
        }
        w.into_bytes()
    }

    /// Decodes a request frame. Never panics on corrupt input; a frame
    /// with a future version byte reports
    /// [`WireError::UnsupportedVersion`] so the server can answer with a
    /// typed rejection instead of generic corruption.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        read_header(&mut r)?;
        let tag = r.u8()?;
        let req = match tag {
            0 => {
                let shard = read_u128(&mut r)?;
                let data = r.var_bytes()?.to_vec();
                Request::Put { shard, data }
            }
            1 => Request::Get { shard: read_u128(&mut r)? },
            2 => Request::Delete { shard: read_u128(&mut r)? },
            3 => Request::List,
            4 => Request::RemoveDisk { disk: r.u32()? },
            5 => Request::ReturnDisk { disk: r.u32()? },
            6 => Request::Migrate { shard: read_u128(&mut r)?, to_disk: r.u32()? },
            7 => {
                let n = r.u32()? as usize;
                // Each element is at least 17 bytes (u128 + 1-byte
                // var-length prefix at minimum); reject impossible counts
                // before allocating.
                if n.checked_mul(17).map(|b| b > r.remaining()).unwrap_or(true) {
                    return Err(CodecError::BadLength.into());
                }
                let mut shards = Vec::with_capacity(n);
                for _ in 0..n {
                    let shard = read_u128(&mut r)?;
                    let data = r.var_bytes()?.to_vec();
                    shards.push((shard, data));
                }
                Request::BulkCreate { shards }
            }
            8 => {
                let n = r.u32()? as usize;
                if n.checked_mul(16).map(|b| b > r.remaining()).unwrap_or(true) {
                    return Err(CodecError::BadLength.into());
                }
                let mut shards = Vec::with_capacity(n);
                for _ in 0..n {
                    shards.push(read_u128(&mut r)?);
                }
                Request::BulkRemove { shards }
            }
            9 => Request::Scan {
                start: read_u128(&mut r)?,
                end: read_u128(&mut r)?,
                limit: r.u32()?,
                continuation: read_opt_u128(&mut r)?,
            },
            10 => Request::Introspect,
            _ => return Err(CodecError::BadValue.into()),
        };
        if r.remaining() != 0 {
            return Err(CodecError::BadLength.into());
        }
        Ok(req)
    }
}

impl Response {
    /// Encodes the response to wire bytes (a versioned frame).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        write_header(&mut w);
        match self {
            Response::Ok => {
                w.u8(0);
            }
            Response::Data(data) => {
                w.u8(1);
                write_value(&mut w, data);
            }
            Response::NotFound => {
                w.u8(2);
            }
            Response::Shards(shards) => {
                w.u8(3).u32(shards.len() as u32);
                for s in shards {
                    w.bytes(&s.to_le_bytes());
                }
            }
            Response::Error(e) => {
                w.u8(4).u8(e.code.as_u8()).var_bytes(e.detail.as_bytes());
            }
            Response::ScanPage { entries, next } => {
                w.u8(5).u32(entries.len() as u32);
                for (key, value) in entries {
                    w.bytes(&key.to_le_bytes());
                    write_value(&mut w, value);
                }
                write_opt_u128(&mut w, next);
            }
            Response::Introspect { json } => {
                w.u8(6).var_bytes(json.as_bytes());
            }
        }
        w.into_bytes()
    }

    /// Decodes a response frame. Never panics on corrupt input.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        read_header(&mut r)?;
        let tag = r.u8()?;
        let resp = match tag {
            0 => Response::Ok,
            1 => Response::Data(r.var_bytes()?.to_vec().into()),
            2 => Response::NotFound,
            3 => {
                let n = r.u32()? as usize;
                if n.checked_mul(16).map(|b| b > r.remaining()).unwrap_or(true) {
                    return Err(CodecError::BadLength.into());
                }
                let mut shards = Vec::with_capacity(n);
                for _ in 0..n {
                    shards.push(read_u128(&mut r)?);
                }
                Response::Shards(shards)
            }
            4 => {
                let code = ErrorCode::from_u8(r.u8()?).ok_or(CodecError::BadValue)?;
                let detail = String::from_utf8(r.var_bytes()?.to_vec())
                    .map_err(|_| CodecError::BadValue)?;
                Response::Error(RpcError { code, detail })
            }
            5 => {
                let n = r.u32()? as usize;
                // Each entry is at least 20 bytes (u128 key + u32 value
                // length); reject impossible counts before allocating.
                if n.checked_mul(20).map(|b| b > r.remaining()).unwrap_or(true) {
                    return Err(CodecError::BadLength.into());
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = read_u128(&mut r)?;
                    let value: ValueBuf = r.var_bytes()?.to_vec().into();
                    entries.push((key, value));
                }
                let next = read_opt_u128(&mut r)?;
                Response::ScanPage { entries, next }
            }
            6 => {
                let json = String::from_utf8(r.var_bytes()?.to_vec())
                    .map_err(|_| CodecError::BadValue)?;
                Response::Introspect { json }
            }
            _ => return Err(CodecError::BadValue.into()),
        };
        if r.remaining() != 0 {
            return Err(CodecError::BadLength.into());
        }
        Ok(resp)
    }
}

fn read_u128(r: &mut Reader<'_>) -> Result<u128, CodecError> {
    let mut b = [0u8; 16];
    b.copy_from_slice(r.bytes(16)?);
    Ok(u128::from_le_bytes(b))
}

fn write_opt_u128(w: &mut Writer, v: &Option<u128>) {
    match v {
        Some(v) => {
            w.u8(1).bytes(&v.to_le_bytes());
        }
        None => {
            w.u8(0);
        }
    }
}

fn read_opt_u128(r: &mut Reader<'_>) -> Result<Option<u128>, CodecError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(read_u128(r)?)),
        _ => Err(CodecError::BadValue),
    }
}

/// Encodes a value as a length-prefixed byte string by writing the
/// [`ValueBuf`]'s shared segments straight into the frame — the hot read
/// path's only value "copy" is this serialization into the wire buffer,
/// never an intermediate `Vec<u8>` assembly.
fn write_value(w: &mut Writer, value: &ValueBuf) {
    w.u32(value.len() as u32);
    for segment in value.segments() {
        w.bytes(segment);
    }
}

/// Dispatches one decoded request against a node, synchronously. This is
/// the single-request execution path shared by the parallel engine's
/// executors ([`crate::engine`]) and by direct in-process callers.
pub fn dispatch(node: &Node, request: Request) -> Response {
    match request {
        Request::Put { shard, data } => match node.put(shard, &data) {
            Ok(_dep) => Response::Ok,
            Err(e) => Response::error(e),
        },
        Request::Get { shard } => match node.get_value(shard) {
            Ok(Some(data)) => Response::Data(data),
            Ok(None) => Response::NotFound,
            Err(e) => Response::error(e),
        },
        Request::Delete { shard } => match node.delete(shard) {
            Ok(_dep) => Response::Ok,
            Err(e) => Response::error(e),
        },
        Request::List => Response::Shards(node.list()),
        Request::RemoveDisk { disk } => {
            if disk as usize >= node.disk_count() {
                return no_such_disk(disk);
            }
            match node.remove_disk(disk as usize) {
                Ok(()) => Response::Ok,
                Err(e) => Response::error(e),
            }
        }
        Request::ReturnDisk { disk } => {
            if disk as usize >= node.disk_count() {
                return no_such_disk(disk);
            }
            match node.return_disk(disk as usize) {
                Ok(()) => Response::Ok,
                Err(e) => Response::error(e),
            }
        }
        Request::Migrate { shard, to_disk } => {
            if to_disk as usize >= node.disk_count() {
                return no_such_disk(to_disk);
            }
            match node.migrate(shard, to_disk as usize) {
                Ok(_dep) => Response::Ok,
                Err(e) => Response::error(e),
            }
        }
        Request::BulkCreate { shards } => match node.bulk_create(&shards) {
            Ok(_deps) => Response::Ok,
            Err(e) => Response::error(e),
        },
        Request::BulkRemove { shards } => match node.bulk_remove(&shards) {
            Ok(_deps) => Response::Ok,
            Err(e) => Response::error(e),
        },
        Request::Scan { start, end, limit, continuation } => {
            match node.scan(start, end, limit, continuation) {
                Ok((entries, next)) => Response::ScanPage { entries, next },
                Err(e) => Response::error(e),
            }
        }
        Request::Introspect => introspect(node),
    }
}

/// Schema version of the [`introspect`] health report.
///
/// Version history (fields are only ever added, so version-1 readers keep
/// working against version-2 reports):
/// - **1**: `disk`, `in_service`, `queue_depth`, `quarantined_extents`,
///   `compaction_debt`, `dropped_events`, `metrics` per disk.
/// - **2**: adds `backend` (storage backend kind), `fsyncs`,
///   `bytes_synced`, and `recovery_scan_ms` per disk.
pub const INTROSPECT_VERSION: u64 = 2;

/// Builds the [`Response::Introspect`] health report for a node. Reads
/// only observability state — metric registries, trace counters, catalog
/// and index summaries — never the engine's executor queues, so an
/// overloaded node still answers. The per-disk queue depth comes from the
/// engine-maintained `rpc.queue_depth` gauge (zero when no engine runs).
pub fn introspect(node: &Node) -> Response {
    let mut disks = Vec::with_capacity(node.disk_count());
    for d in 0..node.disk_count() {
        let store = node.store(d);
        let mut fields: Vec<(String, Json)> = vec![
            ("disk".into(), Json::U64(d as u64)),
            ("in_service".into(), Json::Bool(store.is_some())),
        ];
        match node.disk_obs(d) {
            Some(obs) => {
                let depth = obs.registry().gauge("rpc.queue_depth").get();
                fields.push(("queue_depth".into(), Json::I64(depth)));
                if let Some((backend, stats)) = node.disk_stats(d) {
                    // Version-2 additions, additive so version-1 readers
                    // keep parsing the report.
                    fields.push(("backend".into(), Json::Str(backend.into())));
                    fields.push(("fsyncs".into(), Json::U64(stats.fsyncs)));
                    fields.push(("bytes_synced".into(), Json::U64(stats.bytes_synced)));
                    fields.push(("recovery_scan_ms".into(), Json::U64(stats.recovery_scan_ms)));
                }
                let quarantined: Vec<u64> = store
                    .as_ref()
                    .map(|s| s.quarantined_extents().iter().map(|e| u64::from(e.0)).collect())
                    .unwrap_or_default();
                fields.push(("quarantined_extents".into(), Json::u64_array(&quarantined)));
                let debt = store.as_ref().map(|s| s.index().table_count() as u64).unwrap_or(0);
                fields.push(("compaction_debt".into(), Json::U64(debt)));
                fields.push(("dropped_events".into(), Json::U64(obs.trace().dropped())));
                fields.push(("metrics".into(), Json::from(&obs.snapshot())));
            }
            // B4's buggy removal dropped the disk handle: report the slot
            // as observability-less rather than omitting it.
            None => fields.push(("observable".into(), Json::Bool(false))),
        }
        disks.push(Json::object(fields));
    }
    let report = Json::object(vec![
        ("version".into(), Json::U64(INTROSPECT_VERSION)),
        ("disks".into(), Json::Array(disks)),
    ]);
    Response::Introspect { json: report.render() }
}

pub(crate) fn no_such_disk(disk: u32) -> Response {
    Response::Error(RpcError::new(ErrorCode::NoSuchDisk, format!("no such disk {disk}")))
}
