//! The RPC layer: wire-format requests and responses plus an in-process
//! server loop (§2.1 "RPC interface").
//!
//! Clients interact with ShardStore through a shared RPC interface that
//! steers requests to target disks based on shard ids. The wire codec is
//! hand-rolled and panic-free on arbitrary bytes — request parsing is part
//! of the untrusted input surface §7 of the paper worries about, and the
//! property suite fuzzes [`Request::decode`]/[`Response::decode`]
//! accordingly.

use crossbeam::channel::{unbounded, Receiver, Sender};
use shardstore_vdisk::codec::{CodecError, Reader, Writer};

use crate::node::Node;

/// A request-plane or control-plane RPC request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Store a shard.
    Put {
        /// Target shard id.
        shard: u128,
        /// Shard payload.
        data: Vec<u8>,
    },
    /// Read a shard.
    Get {
        /// Target shard id.
        shard: u128,
    },
    /// Delete a shard.
    Delete {
        /// Target shard id.
        shard: u128,
    },
    /// List all shards (control plane).
    List,
    /// Remove a disk from service (control plane).
    RemoveDisk {
        /// Disk slot index.
        disk: u32,
    },
    /// Return a removed disk to service (control plane).
    ReturnDisk {
        /// Disk slot index.
        disk: u32,
    },
    /// Migrate a shard to another disk (control plane).
    Migrate {
        /// The shard to move.
        shard: u128,
        /// Destination disk slot.
        to_disk: u32,
    },
}

/// An RPC response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// The operation succeeded with no payload.
    Ok,
    /// A get succeeded.
    Data(Vec<u8>),
    /// The shard does not exist.
    NotFound,
    /// A listing.
    Shards(Vec<u128>),
    /// The operation failed.
    Error(String),
}

impl Request {
    /// Encodes the request to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Request::Put { shard, data } => {
                w.u8(0).bytes(&shard.to_le_bytes()).var_bytes(data);
            }
            Request::Get { shard } => {
                w.u8(1).bytes(&shard.to_le_bytes());
            }
            Request::Delete { shard } => {
                w.u8(2).bytes(&shard.to_le_bytes());
            }
            Request::List => {
                w.u8(3);
            }
            Request::RemoveDisk { disk } => {
                w.u8(4).u32(*disk);
            }
            Request::ReturnDisk { disk } => {
                w.u8(5).u32(*disk);
            }
            Request::Migrate { shard, to_disk } => {
                w.u8(6).bytes(&shard.to_le_bytes()).u32(*to_disk);
            }
        }
        w.into_bytes()
    }

    /// Decodes a request from wire bytes. Never panics on corrupt input.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let req = match tag {
            0 => {
                let shard = read_u128(&mut r)?;
                let data = r.var_bytes()?.to_vec();
                Request::Put { shard, data }
            }
            1 => Request::Get { shard: read_u128(&mut r)? },
            2 => Request::Delete { shard: read_u128(&mut r)? },
            3 => Request::List,
            4 => Request::RemoveDisk { disk: r.u32()? },
            5 => Request::ReturnDisk { disk: r.u32()? },
            6 => Request::Migrate { shard: read_u128(&mut r)?, to_disk: r.u32()? },
            _ => return Err(CodecError::BadValue),
        };
        if r.remaining() != 0 {
            return Err(CodecError::BadLength);
        }
        Ok(req)
    }
}

impl Response {
    /// Encodes the response to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            Response::Ok => {
                w.u8(0);
            }
            Response::Data(data) => {
                w.u8(1).var_bytes(data);
            }
            Response::NotFound => {
                w.u8(2);
            }
            Response::Shards(shards) => {
                w.u8(3).u32(shards.len() as u32);
                for s in shards {
                    w.bytes(&s.to_le_bytes());
                }
            }
            Response::Error(msg) => {
                w.u8(4).var_bytes(msg.as_bytes());
            }
        }
        w.into_bytes()
    }

    /// Decodes a response from wire bytes. Never panics on corrupt input.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let tag = r.u8()?;
        let resp = match tag {
            0 => Response::Ok,
            1 => Response::Data(r.var_bytes()?.to_vec()),
            2 => Response::NotFound,
            3 => {
                let n = r.u32()? as usize;
                if n.checked_mul(16).map(|b| b > r.remaining()).unwrap_or(true) {
                    return Err(CodecError::BadLength);
                }
                let mut shards = Vec::with_capacity(n);
                for _ in 0..n {
                    shards.push(read_u128(&mut r)?);
                }
                Response::Shards(shards)
            }
            4 => {
                let msg = String::from_utf8(r.var_bytes()?.to_vec())
                    .map_err(|_| CodecError::BadValue)?;
                Response::Error(msg)
            }
            _ => return Err(CodecError::BadValue),
        };
        if r.remaining() != 0 {
            return Err(CodecError::BadLength);
        }
        Ok(resp)
    }
}

fn read_u128(r: &mut Reader<'_>) -> Result<u128, CodecError> {
    let mut b = [0u8; 16];
    b.copy_from_slice(r.bytes(16)?);
    Ok(u128::from_le_bytes(b))
}

/// Dispatches one decoded request against a node.
pub fn dispatch(node: &Node, request: Request) -> Response {
    match request {
        Request::Put { shard, data } => match node.put(shard, &data) {
            Ok(_dep) => Response::Ok,
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Get { shard } => match node.get(shard) {
            Ok(Some(data)) => Response::Data(data),
            Ok(None) => Response::NotFound,
            Err(e) => Response::Error(e.to_string()),
        },
        Request::Delete { shard } => match node.delete(shard) {
            Ok(_dep) => Response::Ok,
            Err(e) => Response::Error(e.to_string()),
        },
        Request::List => Response::Shards(node.list()),
        Request::RemoveDisk { disk } => {
            if disk as usize >= node.disk_count() {
                return Response::Error("no such disk".into());
            }
            match node.remove_disk(disk as usize) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::ReturnDisk { disk } => {
            if disk as usize >= node.disk_count() {
                return Response::Error("no such disk".into());
            }
            match node.return_disk(disk as usize) {
                Ok(()) => Response::Ok,
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::Migrate { shard, to_disk } => {
            if to_disk as usize >= node.disk_count() {
                return Response::Error("no such disk".into());
            }
            match node.migrate(shard, to_disk as usize) {
                Ok(_dep) => Response::Ok,
                Err(e) => Response::Error(e.to_string()),
            }
        }
    }
}

/// Handle for sending wire-encoded requests to a running [`serve`] loop.
#[derive(Debug, Clone)]
pub struct RpcClient {
    tx: Sender<WireCall>,
}

impl RpcClient {
    /// Sends a request and waits for the response. Malformed requests get
    /// an error response rather than killing the server.
    pub fn call(&self, request: &Request) -> Response {
        let (reply_tx, reply_rx) = unbounded();
        if self.tx.send((request.encode(), reply_tx)).is_err() {
            return Response::Error("server stopped".into());
        }
        match reply_rx.recv() {
            Ok(bytes) => {
                Response::decode(&bytes).unwrap_or(Response::Error("bad response".into()))
            }
            Err(_) => Response::Error("server stopped".into()),
        }
    }
}

/// A wire request paired with the channel its response should go to.
type WireCall = (Vec<u8>, Sender<Vec<u8>>);

/// Runs an RPC server loop over in-process channels; returns a client
/// handle and a join guard (dropping the client stops the server).
pub fn serve(node: Node) -> (RpcClient, std::thread::JoinHandle<()>) {
    let (tx, rx): (Sender<WireCall>, Receiver<WireCall>) = unbounded();
    let handle = std::thread::spawn(move || {
        while let Ok((bytes, reply)) = rx.recv() {
            let response = match Request::decode(&bytes) {
                Ok(req) => dispatch(&node, req),
                Err(e) => Response::Error(format!("malformed request: {e}")),
            };
            let _ = reply.send(response.encode());
        }
    });
    (RpcClient { tx }, handle)
}
