//! The per-disk key-value store: ShardStore's API layer (§2 of the paper).
//!
//! Each disk is an isolated failure domain running an independent
//! key-value store. A store assembles the full substrate stack — virtual
//! disk, IO scheduler, extent manager/superblock, chunk store, buffer
//! cache, LSM index — and exposes the request-plane API (`put`, `get`,
//! `delete`) plus maintenance entry points (index flush, compaction,
//! chunk reclamation) and lifecycle operations (clean shutdown, recovery
//! after a dirty reboot).
//!
//! A `put` builds exactly the dependency graph of Fig. 2: the shard data
//! is chunked and written to data extents; the index entry is recorded in
//! the LSM tree (a promise sealed by the next flush, which also writes the
//! LSM metadata); every append additionally folds a soft-write-pointer
//! update into the pending superblock write. The returned [`Dependency`]
//! persists only when all of it has.

use std::fmt;
use std::sync::Arc;

use shardstore_cache::{CachedChunkStore, ValueBuf};
use shardstore_chunk::{ChunkError, ChunkStore, Stream};
use shardstore_conc::sync::Mutex;
use shardstore_dependency::{Dependency, IoScheduler};
use shardstore_faults::{coverage, FaultConfig};
use shardstore_lsm::{LsmError, LsmIndex};
use shardstore_obs::{Obs, OpKind, TraceEvent};
use shardstore_superblock::{ExtentError, ExtentManager, Owner};
use shardstore_vdisk::{Disk, Geometry};

/// Store-level errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Chunk layer failure.
    Chunk(ChunkError),
    /// Index layer failure.
    Lsm(LsmError),
    /// Extent layer failure.
    Extent(ExtentError),
    /// The store is out of service (disk removed by the control plane).
    OutOfService,
    /// The storage backend failed outside the modelled fault space: the
    /// volume file could not be created, opened, or validated.
    Backend(shardstore_vdisk::IoError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Chunk(e) => write!(f, "chunk: {e}"),
            StoreError::Lsm(e) => write!(f, "index: {e}"),
            StoreError::Extent(e) => write!(f, "extent: {e}"),
            StoreError::OutOfService => write!(f, "store out of service"),
            StoreError::Backend(e) => write!(f, "backend: {e}"),
        }
    }
}

impl StoreError {
    /// True if this error reports *degraded* data — present but
    /// unreachable because its extent was quarantined after a permanent
    /// fault — rather than data that never existed. Callers (and the
    /// validation harness) use this to distinguish honest unavailability
    /// from a lost write.
    pub fn is_degraded(&self) -> bool {
        match self {
            StoreError::Chunk(e) => e.is_degraded(),
            StoreError::Lsm(e) => e.is_degraded(),
            StoreError::Extent(e) => matches!(e, ExtentError::Quarantined { .. }),
            StoreError::OutOfService => false,
            StoreError::Backend(_) => false,
        }
    }
}

impl std::error::Error for StoreError {}

impl From<ChunkError> for StoreError {
    fn from(e: ChunkError) -> Self {
        StoreError::Chunk(e)
    }
}

impl From<LsmError> for StoreError {
    fn from(e: LsmError) -> Self {
        StoreError::Lsm(e)
    }
}

impl From<ExtentError> for StoreError {
    fn from(e: ExtentError) -> Self {
        StoreError::Extent(e)
    }
}

/// Store configuration.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Storage backend used by [`Store::format`] for the fresh disk.
    /// Defaults to [`BackendKind::from_env`], so exporting
    /// `SHARDSTORE_BACKEND=file` points whole suites at real storage.
    pub backend: crate::config::BackendKind,
    /// Maximum chunk payload size; larger shards are split across chunks.
    pub max_chunk_size: usize,
    /// Memtable entry count that triggers an automatic index flush.
    pub flush_threshold: usize,
    /// Buffer-cache capacity in bytes. The paper's §8.3 recounts a bug
    /// that hid behind an oversized test cache — keep this small in
    /// property-based tests so the miss path stays covered.
    pub cache_capacity: usize,
    /// Deterministic seed for chunk UUID generation.
    pub uuid_seed: u64,
    /// Build per-table fence/bloom metadata on the index read path.
    pub lsm_filters: bool,
    /// Decoded-table cache capacity (in tables); 0 disables it.
    pub decoded_cache_tables: usize,
    /// Key-hashed memtable shard count (clamped to at least 1). `1`
    /// reproduces the old single-lock memtable for ablation.
    pub memtable_shards: usize,
    /// Live-table count at which an automatic flush also schedules a
    /// compaction round (size-tiered, bounded per round). Explicit
    /// `compact_index` calls ignore this trigger.
    pub compaction_trigger_tables: usize,
    /// Max entries per block in format-v2 SSTables (clamped to at
    /// least 1). Point gets decode one block; smaller blocks mean less
    /// decoded per get but more fence-index overhead.
    pub block_size: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        Self {
            backend: crate::config::BackendKind::from_env(),
            max_chunk_size: 4096,
            flush_threshold: 64,
            cache_capacity: 1 << 20,
            uuid_seed: 1,
            lsm_filters: true,
            decoded_cache_tables: 8,
            memtable_shards: 8,
            compaction_trigger_tables: 8,
            block_size: 16,
        }
    }
}

impl StoreConfig {
    /// A configuration sized for the small test geometry: chunks split at
    /// sub-page sizes, early flushes, and small caches (payload *and*
    /// decoded-table) so that eviction and miss paths are reachable.
    pub fn small() -> Self {
        Self {
            backend: crate::config::BackendKind::from_env(),
            max_chunk_size: 96,
            flush_threshold: 6,
            cache_capacity: 512,
            uuid_seed: 1,
            lsm_filters: true,
            decoded_cache_tables: 2,
            // Two shards: enough to exercise the cross-shard merge paths
            // without multiplying checker scheduling points.
            memtable_shards: 2,
            // Low trigger and tiny blocks so tests reach multi-round
            // compaction and block-boundary paths quickly.
            compaction_trigger_tables: 4,
            block_size: 4,
        }
    }

    fn lsm_config(&self) -> shardstore_lsm::LsmConfig {
        shardstore_lsm::LsmConfig {
            filters: self.lsm_filters,
            decoded_cache_tables: self.decoded_cache_tables,
            memtable_shards: self.memtable_shards,
            compaction_trigger_tables: self.compaction_trigger_tables,
            block_size: self.block_size,
        }
    }
}

/// One per-disk ShardStore key-value store. Cheap to clone.
#[derive(Clone)]
pub struct Store {
    index: LsmIndex,
    faults: FaultConfig,
    config: StoreConfig,
    in_service: Arc<Mutex<bool>>,
    /// Quarantined extents whose evacuation has already run (evacuation
    /// is one-shot per extent; stranded chunks stay degraded).
    evacuated: Arc<Mutex<std::collections::BTreeSet<u32>>>,
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Store").field("index", &self.index).finish()
    }
}

impl Store {
    /// Formats a fresh store on a newly created disk, with the backend
    /// chosen by `config.backend`. Panics if the file backend cannot set
    /// up its volume file — use [`Store::try_format`] where a typed error
    /// is needed.
    pub fn format(geometry: Geometry, config: StoreConfig, faults: FaultConfig) -> Self {
        Self::try_format(geometry, config, faults).expect("store format failed")
    }

    /// Formats a fresh store, surfacing backend setup failures as
    /// [`StoreError::Backend`] instead of panicking.
    pub fn try_format(
        geometry: Geometry,
        config: StoreConfig,
        faults: FaultConfig,
    ) -> Result<Self, StoreError> {
        let disk = Self::create_disk(geometry, &config)?;
        let sched = IoScheduler::new(disk);
        Ok(Self::format_on(sched, config, faults))
    }

    /// Formats onto a caller-provided scheduler — the entry point for
    /// booting on a disk the caller constructed itself, e.g. one opened
    /// over a named volume file that must outlive the store.
    pub fn format_on(sched: IoScheduler, config: StoreConfig, faults: FaultConfig) -> Self {
        let em = ExtentManager::format(sched, faults.clone());
        let cs = ChunkStore::new(em, faults.clone(), config.uuid_seed);
        let cache = CachedChunkStore::new(cs, faults.clone(), config.cache_capacity);
        let index = LsmIndex::with_config(cache, faults.clone(), config.lsm_config());
        Self {
            index,
            faults,
            config,
            in_service: Arc::new(Mutex::new(true)),
            evacuated: Arc::new(Mutex::new(std::collections::BTreeSet::new())),
        }
    }

    /// Creates the disk `config.backend` asks for. File volumes are
    /// store-managed scratch files (unique name, unlinked on drop) under
    /// the configured directory.
    fn create_disk(
        geometry: Geometry,
        config: &StoreConfig,
    ) -> Result<Arc<Disk>, StoreError> {
        match &config.backend {
            crate::config::BackendKind::Memory => Ok(Disk::new(geometry)),
            crate::config::BackendKind::File { dir, preallocate } => {
                if shardstore_conc::is_controlled() {
                    // A checked execution must stay off the filesystem even
                    // when the suite-wide env var asks for real storage:
                    // schedule exploration and crash enumeration only have
                    // their exhaustiveness guarantees over the in-memory
                    // backend.
                    coverage::hit("store.backend.checker_fallback");
                    return Ok(Disk::new(geometry));
                }
                std::fs::create_dir_all(dir).map_err(|e| {
                    StoreError::Backend(shardstore_vdisk::IoError::Backend {
                        detail: format!("create volume dir {}: {e}", dir.display()),
                    })
                })?;
                use std::sync::atomic::{AtomicU64, Ordering};
                static VOLUME_SEQ: AtomicU64 = AtomicU64::new(0);
                let seq = VOLUME_SEQ.fetch_add(1, Ordering::Relaxed);
                let path = dir.join(format!("vol-{}-{seq}.ssvol", std::process::id()));
                Disk::create_file(path, geometry, *preallocate, true).map_err(StoreError::Backend)
            }
        }
    }

    /// Recovers a store from an existing disk after a reboot (clean or
    /// dirty): superblock → chunk registry scan → LSM metadata. On a
    /// file-backed disk the wall-clock cost of scanning real bytes is
    /// recorded into the disk's stats (`recovery_scan_ms`); the in-memory
    /// path stays clock-free so checked executions remain deterministic.
    pub fn recover(
        sched: IoScheduler,
        config: StoreConfig,
        faults: FaultConfig,
    ) -> Result<Self, StoreError> {
        let obs = sched.obs();
        obs.trace().event(TraceEvent::RecoveryStart);
        let timed = sched.disk().backend_kind() == "file";
        let res = if timed {
            let (res, ms) =
                shardstore_obs::walltime::time_ms(|| Self::recover_inner(sched.clone(), config, faults));
            sched.disk().note_recovery_scan_ms(ms);
            res
        } else {
            Self::recover_inner(sched, config, faults)
        };
        obs.trace().event(TraceEvent::RecoveryEnd { ok: res.is_ok() });
        res
    }

    fn recover_inner(
        sched: IoScheduler,
        config: StoreConfig,
        faults: FaultConfig,
    ) -> Result<Self, StoreError> {
        let em = ExtentManager::recover(sched, faults.clone())?;
        let cs = ChunkStore::recover(em, faults.clone(), config.uuid_seed)?;
        let cache = CachedChunkStore::new(cs, faults.clone(), config.cache_capacity);
        let index = LsmIndex::recover_with_config(cache, faults.clone(), config.lsm_config())?;
        coverage::hit("store.recovered");
        Ok(Self {
            index,
            faults,
            config,
            in_service: Arc::new(Mutex::new(true)),
            evacuated: Arc::new(Mutex::new(std::collections::BTreeSet::new())),
        })
    }

    /// The store's IO scheduler (for pumping, crash injection, and
    /// dependency construction in tests).
    pub fn scheduler(&self) -> IoScheduler {
        self.index.cache().chunk_store().extent_manager().scheduler().clone()
    }

    /// The store's observability handle (metrics registry + trace log),
    /// shared by every layer of the stack down to the virtual disk.
    pub fn obs(&self) -> Obs {
        self.index.cache().chunk_store().extent_manager().scheduler().obs()
    }

    /// The LSM index.
    pub fn index(&self) -> &LsmIndex {
        &self.index
    }

    /// The cached chunk store.
    pub fn cache(&self) -> &CachedChunkStore {
        self.index.cache()
    }

    /// Drops every volatile read cache: the payload cache and the index's
    /// decoded-table cache. Harnesses use this to model cache loss; both
    /// caches must be safe to lose at any moment.
    pub fn drop_caches(&self) {
        self.cache().clear();
        self.index.drop_decoded_cache();
    }

    /// The store configuration.
    pub fn config(&self) -> StoreConfig {
        self.config.clone()
    }

    /// The fault configuration.
    pub fn faults(&self) -> &FaultConfig {
        &self.faults
    }

    fn check_service(&self) -> Result<(), StoreError> {
        if *self.in_service.lock() {
            Ok(())
        } else {
            Err(StoreError::OutOfService)
        }
    }

    /// Marks the store out of service (control-plane disk removal).
    pub fn set_in_service(&self, on: bool) {
        *self.in_service.lock() = on;
    }

    /// Stores a shard. Returns a dependency that persists once the data
    /// chunks, the index entry, and the covering superblock updates are
    /// all durable (Fig. 2's graph for one put).
    pub fn put(&self, shard: u128, data: &[u8]) -> Result<Dependency, StoreError> {
        let obs = self.obs();
        let op = obs.begin_op(OpKind::Put, shard);
        let res = self.put_inner(shard, data, op, &obs);
        obs.end_op(op, res.is_ok());
        res
    }

    fn put_inner(
        &self,
        shard: u128,
        data: &[u8],
        op: u64,
        obs: &Obs,
    ) -> Result<Dependency, StoreError> {
        self.check_service()?;
        let none = self.scheduler().none();
        let mut locators = Vec::new();
        let mut deps = Vec::new();
        let mut data_deps = Vec::new();
        let mut guards = Vec::new();
        let chunks: Vec<&[u8]> = if data.is_empty() {
            vec![&[][..]]
        } else {
            data.chunks(self.config.max_chunk_size.max(1)).collect()
        };
        if chunks.len() > 1 {
            coverage::hit("store.put.multi_chunk");
        }
        for piece in chunks {
            let out = self.cache().put(Stream::Data, piece, &none)?;
            locators.push(out.locator);
            deps.push(out.dep);
            data_deps.push(out.data_dep);
            // Pin each chunk's extent until the index references it (the
            // issue #11 fix at the API layer).
            guards.push(out.guard);
        }
        // An overwrite orphans the previous value's chunks: hint them
        // dead so reclamation can prioritize their extents. The hint is
        // best-effort — a degraded index read must not fail the write.
        match self.index.get(shard) {
            Ok(Some(old)) => {
                for locator in &old {
                    self.cache().chunk_store().mark_dead(locator);
                }
            }
            Ok(None) => {}
            Err(e) if e.is_degraded() => {}
            Err(e) => return Err(e.into()),
        }
        let data_dep = self.scheduler().join(&data_deps);
        let index_dep = self.index.put(shard, locators, data_dep);
        drop(guards);
        deps.push(index_dep);
        let dep = self.scheduler().join(&deps);
        // Announce the op's data-write nodes and its returned durability
        // handle so the acked-durability oracle can link a later ack back
        // to the writes it promises.
        let nodes: Vec<u64> = data_deps.iter().filter_map(Dependency::trace_node).collect();
        obs.trace().event(TraceEvent::OpWrites { op, nodes });
        if let Some(n) = dep.trace_node() {
            obs.trace().event(TraceEvent::OpReturn { op, dep: n });
        }
        self.maybe_flush()?;
        Ok(dep)
    }

    /// Stores several shards as one group commit. All elements' data
    /// chunks go down as a single grouped batch — one shared superblock
    /// pointer update, contiguous frames coalesced into fewer disk IOs —
    /// then each element's index entry is recorded individually. The
    /// batch is atomic *per element*, exactly as if the puts had run back
    /// to back (later duplicates of a key overwrite earlier ones); it is
    /// never all-or-nothing across elements. Returns one durability
    /// dependency per element, in input order.
    pub fn put_batch(&self, shards: &[(u128, Vec<u8>)]) -> Result<Vec<Dependency>, StoreError> {
        let obs = self.obs();
        let op = obs.begin_op(OpKind::PutBatch, 0);
        let res = self.put_batch_inner(shards, &obs);
        obs.end_op(op, res.is_ok());
        res
    }

    fn put_batch_inner(
        &self,
        shards: &[(u128, Vec<u8>)],
        obs: &Obs,
    ) -> Result<Vec<Dependency>, StoreError> {
        self.check_service()?;
        if shards.is_empty() {
            return Ok(Vec::new());
        }
        let none = self.scheduler().none();
        let max = self.config.max_chunk_size.max(1);
        // Chunk every element up front, remembering how many pieces each
        // contributed so the grouped outcomes can be handed back out.
        let mut pieces: Vec<&[u8]> = Vec::new();
        let mut counts: Vec<usize> = Vec::with_capacity(shards.len());
        for (_, data) in shards {
            let before = pieces.len();
            if data.is_empty() {
                pieces.push(&[][..]);
            } else {
                pieces.extend(data.chunks(max));
            }
            counts.push(pieces.len() - before);
        }
        coverage::hit("store.put_batch");
        let mut outs = self.cache().put_batch(Stream::Data, &pieces, &none)?.into_iter();
        let mut deps_out = Vec::with_capacity(shards.len());
        for ((shard, _), n) in shards.iter().zip(counts) {
            // Each element gets its own span: the batch is atomic per
            // element, so the oracles treat each as an independent put.
            let elem_op = obs.begin_op(OpKind::Put, *shard);
            let mut locators = Vec::with_capacity(n);
            let mut deps = Vec::with_capacity(n + 1);
            let mut data_deps = Vec::with_capacity(n);
            let mut guards = Vec::with_capacity(n);
            for _ in 0..n {
                let out = outs.next().expect("one outcome per piece");
                locators.push(out.locator);
                deps.push(out.dep);
                data_deps.push(out.data_dep);
                guards.push(out.guard);
            }
            match self.index.get(*shard) {
                Ok(Some(old)) => {
                    for locator in &old {
                        self.cache().chunk_store().mark_dead(locator);
                    }
                }
                Ok(None) => {}
                Err(e) if e.is_degraded() => {}
                Err(e) => {
                    obs.end_op(elem_op, false);
                    return Err(e.into());
                }
            }
            let data_dep = self.scheduler().join(&data_deps);
            let index_dep = self.index.put(*shard, locators, data_dep);
            drop(guards);
            deps.push(index_dep);
            let dep = self.scheduler().join(&deps);
            let nodes: Vec<u64> = data_deps.iter().filter_map(Dependency::trace_node).collect();
            obs.trace().event(TraceEvent::OpWrites { op: elem_op, nodes });
            if let Some(nid) = dep.trace_node() {
                obs.trace().event(TraceEvent::OpReturn { op: elem_op, dep: nid });
            }
            obs.end_op(elem_op, true);
            deps_out.push(dep);
        }
        self.maybe_flush()?;
        Ok(deps_out)
    }

    /// Reads a shard as owned contiguous bytes. Returns `None` for absent
    /// shards; corruption is always detected and surfaced as an error,
    /// never as wrong data. The copy-based compatibility wrapper over
    /// [`Store::get_value`] — new callers should prefer the zero-copy
    /// handle.
    pub fn get(&self, shard: u128) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.get_value(shard)?.map(|v| v.to_vec()))
    }

    /// Reads a shard as a zero-copy [`ValueBuf`]: the returned handle
    /// shares the cache's payload buffers instead of copying them, so a
    /// warm get performs zero value memcpys.
    ///
    /// Like the index, the data-chunk read is optimistic against
    /// concurrent reclamation: if a chunk read fails and the index entry
    /// has moved in the meantime (its chunks were relocated), the read is
    /// retried against the fresh locators.
    pub fn get_value(&self, shard: u128) -> Result<Option<ValueBuf>, StoreError> {
        let obs = self.obs();
        let op = obs.begin_op(OpKind::Get, shard);
        let res = self.get_value_inner(shard);
        obs.end_op(op, res.is_ok());
        res
    }

    fn get_value_inner(&self, shard: u128) -> Result<Option<ValueBuf>, StoreError> {
        self.check_service()?;
        loop {
            let Some(locators) = self.index.get(shard)? else {
                return Ok(None);
            };
            match self.read_value(&locators) {
                Ok(value) => return Ok(Some(value)),
                Err(e) => {
                    if e.is_degraded() {
                        // A quarantine surfaced on this read path.
                        // Evacuate what the cache still holds — it may
                        // re-home this very chunk (rewiring the index),
                        // and helps every other key on the extent either
                        // way.
                        self.evacuate_pending()?;
                    }
                    let now = self.index.get(shard)?;
                    if now.as_ref() != Some(&locators) {
                        coverage::hit("store.get.retry_relocated");
                        continue;
                    }
                    return Err(e.into());
                }
            }
        }
    }

    // HOT-PATH-BEGIN(store-read): the certified zero-copy read path. The
    // guard script (scripts/check_hot_path.sh) asserts no value bytes are
    // copied here — cache payloads are shared into the ValueBuf, never
    // `extend_from_slice`d or `to_vec`d.
    /// Assembles a value from its chunks by collecting the cache's shared
    /// payload handles.
    fn read_value(&self, locators: &[shardstore_chunk::Locator]) -> Result<ValueBuf, ChunkError> {
        let mut value = ValueBuf::new();
        for locator in locators {
            value.push_segment(self.cache().get(locator)?);
        }
        Ok(value)
    }
    // HOT-PATH-END(store-read)

    /// Ordered range scan: every present shard in the inclusive range
    /// `[start, end]` with its value, ascending by key.
    ///
    /// The key set and per-key locators are pinned by the index's
    /// snapshot-consistent [`LsmIndex::scan`] at scan start; values are
    /// then resolved through the same optimistic relocation retry as
    /// [`Store::get_value`]. A key whose chunks are degraded surfaces the
    /// error — a scan never silently skips a key it cannot read. A key
    /// deleted *after* the snapshot may be dropped from the result (the
    /// scan linearizes per key against concurrent writers, like
    /// back-to-back gets would).
    pub fn scan(&self, start: u128, end: u128) -> Result<Vec<(u128, ValueBuf)>, StoreError> {
        let obs = self.obs();
        let op = obs.begin_op(OpKind::Scan, start);
        let res = self.scan_inner(start, end);
        obs.end_op(op, res.is_ok());
        res
    }

    fn scan_inner(&self, start: u128, end: u128) -> Result<Vec<(u128, ValueBuf)>, StoreError> {
        self.check_service()?;
        let entries = self.index.scan(start, end)?;
        let mut out = Vec::with_capacity(entries.len());
        for (key, mut locators) in entries {
            loop {
                match self.read_value(&locators) {
                    Ok(value) => {
                        out.push((key, value));
                        break;
                    }
                    Err(e) => {
                        if e.is_degraded() {
                            self.evacuate_pending()?;
                        }
                        match self.index.get(key)? {
                            Some(now) if now != locators => {
                                coverage::hit("store.scan.retry_relocated");
                                locators = now;
                            }
                            None => {
                                // Deleted while the scan resolved values:
                                // the key leaves the page rather than
                                // surfacing a phantom error.
                                coverage::hit("store.scan.raced_delete");
                                break;
                            }
                            Some(_) => return Err(e.into()),
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Deletes a shard. Returns the tombstone's durability dependency.
    ///
    /// Dead chunks are only *hinted* dead for reclamation; their cache
    /// entries are left alone — a deleted locator is never read again
    /// through the index, and reclamation drains the cache when it resets
    /// an extent (the invariant issue #2 violated).
    pub fn delete(&self, shard: u128) -> Result<Dependency, StoreError> {
        let obs = self.obs();
        let op = obs.begin_op(OpKind::Delete, shard);
        let res = self.delete_inner(shard, op, &obs);
        obs.end_op(op, res.is_ok());
        res
    }

    fn delete_inner(
        &self,
        shard: u128,
        op: u64,
        obs: &Obs,
    ) -> Result<Dependency, StoreError> {
        self.check_service()?;
        match self.index.get(shard) {
            Ok(Some(locators)) => {
                for locator in &locators {
                    self.cache().chunk_store().mark_dead(locator);
                }
            }
            Ok(None) => {}
            Err(e) if e.is_degraded() => {}
            Err(e) => return Err(e.into()),
        }
        let dep = self.index.delete(shard);
        if let Some(n) = dep.trace_node() {
            obs.trace().event(TraceEvent::OpReturn { op, dep: n });
        }
        self.maybe_flush()?;
        Ok(dep)
    }

    /// All shard ids currently present (merged view).
    pub fn list(&self) -> Result<Vec<u128>, StoreError> {
        self.check_service()?;
        Ok(self.index.keys()?)
    }

    fn maybe_flush(&self) -> Result<(), StoreError> {
        if self.index.memtable_len() >= self.config.flush_threshold {
            coverage::hit("store.flush.threshold");
            match self.index.flush() {
                Ok(_) => {}
                // A full disk defers the flush rather than failing the
                // write that tripped the threshold: that write already
                // succeeded, the memtable keeps its entries visible, and
                // reclamation may free space before the next attempt.
                // Compaction retires whole tables, so a pressure-driven
                // reclaim pass over the index streams usually frees the
                // very space the flush needs — run one and retry once
                // before giving up for this round.
                Err(LsmError::Chunk(ChunkError::NoSpace { .. })) => {
                    coverage::hit("store.flush.deferred");
                    self.reclaim_index_streams();
                    if self.index.flush().is_err() {
                        return Ok(());
                    }
                    coverage::hit("store.flush.deferred_retry_ok");
                }
                Err(e) => return Err(e.into()),
            }
            // Table-count trigger: a threshold flush that tips the tree
            // past the trigger also runs one bounded tiered round.
            // Explicit flush_index calls never compact, so harnesses can
            // stack tables deliberately. Best-effort: the triggering
            // write already succeeded (and may have been acked), and a
            // failed round leaves the table set untouched — so a
            // compaction error (say, NoSpace writing the merged table)
            // must not fail the write that tripped it.
            if self.index.table_count() >= self.config.compaction_trigger_tables.max(2) {
                coverage::hit("store.compact.threshold");
                if self.index.compact().is_err() {
                    coverage::hit("store.compact.deferred");
                }
            }
        }
        Ok(())
    }

    /// Pressure-driven reclamation of the index streams, best-effort.
    /// Compaction and flush retire whole tables in place, so when either
    /// runs out of space the Lsm/Meta streams usually hold extents that
    /// are mostly dead; drain victims until none is left.
    /// Meta first: reclaiming metadata extents never needs a barrier
    /// record (superseded records are dead, and a relocated current
    /// record is byte-identical — recovery finds it by scanning), so it
    /// frees the space the Lsm pass's barrier writes then need.
    fn reclaim_index_streams(&self) {
        coverage::hit("store.reclaim.pressure");
        for stream in [Stream::Meta, Stream::Lsm] {
            while matches!(self.reclaim(stream), Ok(true)) {}
        }
    }

    /// Keys whose latest mutation lives only in the memtable. Harness
    /// support: after a shutdown flush fails with `NoSpace`, these are
    /// exactly the keys a reboot may roll back (§4.4 resource
    /// exhaustion) — everything else must still survive.
    pub fn unflushed_keys(&self) -> Vec<u128> {
        self.index.memtable_keys()
    }

    /// Explicitly flushes the index memtable.
    pub fn flush_index(&self) -> Result<(), StoreError> {
        let obs = self.obs();
        let op = obs.begin_op(OpKind::Flush, 0);
        let res = self.index.flush();
        obs.end_op(op, res.is_ok());
        res?;
        Ok(())
    }

    /// Explicitly compacts the LSM tree.
    pub fn compact_index(&self) -> Result<(), StoreError> {
        self.index.compact()?;
        Ok(())
    }

    /// Runs one chunk-reclamation pass over the best victim extent of the
    /// given stream, if any. Returns true if an extent was reclaimed.
    pub fn reclaim(&self, stream: Stream) -> Result<bool, StoreError> {
        let obs = self.obs();
        let op = obs.begin_op(OpKind::Reclaim, 0);
        let res = self.reclaim_inner(stream);
        obs.end_op(op, res.is_ok());
        res
    }

    fn reclaim_inner(&self, stream: Stream) -> Result<bool, StoreError> {
        self.check_service()?;
        let Some(victim) = self.cache().chunk_store().select_victim(stream) else {
            coverage::hit("store.reclaim.no_victim");
            return Ok(false);
        };
        let reclaimed = match stream {
            Stream::Data => {
                let referencer = self.index.data_referencer();
                self.cache().reclaim(victim, stream, &referencer)?
            }
            Stream::Lsm | Stream::Meta => {
                let referencer = self.index.lsm_referencer();
                self.cache().reclaim(victim, stream, &referencer)?
            }
        };
        if reclaimed.is_some() {
            self.index.note_extent_reset();
            coverage::hit("store.reclaim.done");
        }
        Ok(reclaimed.is_some())
    }

    /// Reclaims a specific extent (used by targeted tests and harnesses).
    pub fn reclaim_extent(
        &self,
        extent: shardstore_vdisk::ExtentId,
        stream: Stream,
    ) -> Result<bool, StoreError> {
        let reclaimed = match stream {
            Stream::Data => {
                let referencer = self.index.data_referencer();
                self.cache().reclaim(extent, stream, &referencer)?
            }
            Stream::Lsm | Stream::Meta => {
                let referencer = self.index.lsm_referencer();
                self.cache().reclaim(extent, stream, &referencer)?
            }
        };
        if reclaimed.is_some() {
            self.index.note_extent_reset();
        }
        Ok(reclaimed.is_some())
    }

    /// Drives all queued IO to completion (the background writeback pump
    /// making a full pass). Permanent extent faults observed during the
    /// pump quarantine the extent (inside the extent manager); this
    /// entry point then evacuates the surviving chunks and pumps the
    /// evacuation IO down too.
    pub fn pump(&self) -> Result<(), StoreError> {
        let em = self.cache().chunk_store().extent_manager();
        // Each round can quarantine at most one new extent, so the loop
        // is bounded by the extent count.
        for _ in 0..=em.extent_count() {
            em.pump()?;
            if !self.evacuate_pending()? {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Extents currently quarantined after a permanent fault.
    pub fn quarantined_extents(&self) -> Vec<shardstore_vdisk::ExtentId> {
        self.cache().chunk_store().extent_manager().quarantined()
    }

    /// Runs the one-shot evacuation for any quarantined extent that has
    /// not been evacuated yet: still-live chunks with a surviving cache
    /// copy are re-homed to fresh extents and their index pointers
    /// rewired; the rest stay degraded. Returns true if any evacuation
    /// ran (the caller should pump the resulting IO).
    pub fn evacuate_pending(&self) -> Result<bool, StoreError> {
        let mut ran = false;
        for extent in self.quarantined_extents() {
            if !self.evacuated.lock().insert(extent.0) {
                continue;
            }
            let owner = self.cache().chunk_store().extent_manager().owner(extent);
            let result = match owner {
                Owner::Data => {
                    let referencer = self.index.data_referencer();
                    self.cache().evacuate_quarantined(extent, Stream::Data, &referencer)
                }
                Owner::LsmData => {
                    let referencer = self.index.lsm_referencer();
                    self.cache().evacuate_quarantined(extent, Stream::Lsm, &referencer)
                }
                Owner::Metadata => {
                    let referencer = self.index.lsm_referencer();
                    self.cache().evacuate_quarantined(extent, Stream::Meta, &referencer)
                }
                _ => continue,
            };
            match result {
                Ok(report) => {
                    if report.evacuated > 0 {
                        coverage::hit("store.evacuate.rescued");
                    }
                    if report.stranded > 0 {
                        coverage::hit("store.evacuate.stranded");
                    }
                    ran = true;
                }
                // A full disk leaves the remaining chunks stranded (and
                // degraded) — honest unavailability, not an error.
                Err(ChunkError::NoSpace { .. }) => ran = true,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(ran)
    }

    /// Clean shutdown: flush the index and pump all IO, after which every
    /// returned dependency must report persistent (§5 forward progress).
    pub fn clean_shutdown(&self) -> Result<(), StoreError> {
        match self.index.shutdown() {
            Ok(()) => {}
            // A full disk can leave the shutdown flush nowhere to write
            // its table. Retired-table chunks are dead space, so reclaim
            // the index streams and retry once; if the disk is genuinely
            // exhausted the error propagates and the memtable's entries
            // are lost to the shutdown (resource exhaustion, §4.4).
            Err(LsmError::Chunk(ChunkError::NoSpace { .. })) => {
                coverage::hit("store.shutdown.reclaim_retry");
                self.reclaim_index_streams();
                match self.index.shutdown() {
                    Ok(()) => {}
                    Err(e @ LsmError::Chunk(ChunkError::NoSpace { .. })) => {
                        // The shutdown flush has nowhere to write even
                        // after reclamation. Still pump: every already
                        // scheduled write (prior flushes, relocations,
                        // data chunks) must become durable, so the loss
                        // is bounded to exactly the unflushed memtable
                        // (§4.4 resource exhaustion).
                        coverage::hit("store.shutdown.no_space");
                        self.pump()?;
                        return Err(e.into());
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            Err(e) => return Err(e.into()),
        }
        self.pump()?;
        coverage::hit("store.clean_shutdown");
        Ok(())
    }

    /// Simulates a dirty reboot at the IO level: drops pending writes and
    /// applies `plan` to the disk's volatile cache, then clears all
    /// volatile component state by recovering a fresh store from the disk.
    pub fn dirty_reboot(
        &self,
        plan: &shardstore_vdisk::CrashPlan,
    ) -> Result<Store, StoreError> {
        let sched = self.scheduler();
        sched.crash(plan);
        Store::recover(sched, self.config.clone(), self.faults.clone())
    }
}
