//! The storage node: multiple per-disk stores behind one request router,
//! plus the control-plane operations (§2.1 "RPC interface").
//!
//! ShardStore runs on hosts with multiple HDDs; each disk is an isolated
//! failure domain running an independent key-value store, and a shared
//! RPC layer steers requests to target disks by shard id. The control
//! plane adds listing, bulk create/remove, and disk removal/return for
//! migration and repair.
//!
//! Three of the paper's Fig. 5 issues live at this layer and are seeded
//! here:
//!
//! - [`BugId::B4DiskRemovalLosesShards`]: returning a previously removed
//!   disk reformatted it instead of recovering it.
//! - [`BugId::B13ListRemoveRace`]: the control-plane listing walked shards
//!   while a removal ran, then asserted that every listed shard still
//!   existed.
//! - [`BugId::B16BulkOpsRace`]: bulk create and bulk remove updated the
//!   index and the control-plane catalog in separate phases, letting a
//!   race leave them inconsistent.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use shardstore_conc::sync::Mutex;
use shardstore_dependency::Dependency;
use shardstore_faults::{coverage, BugId, FaultConfig};
use shardstore_vdisk::Geometry;

use crate::store::{Store, StoreConfig, StoreError};

/// A multi-disk storage node. Cheap to clone.
#[derive(Clone)]
pub struct Node {
    inner: Arc<NodeInner>,
}

struct DiskSlot {
    /// The active store, or `None` while the disk is removed from
    /// service.
    store: Option<Store>,
    /// The disk's IO scheduler, retained across removal so the disk's
    /// contents survive (dropping it is the essence of bug B4).
    sched: Option<shardstore_dependency::IoScheduler>,
}

struct NodeInner {
    disks: Vec<Mutex<DiskSlot>>,
    /// Control-plane catalog of shards believed to exist. Kept consistent
    /// with the per-disk indexes by the fixed code paths.
    catalog: Mutex<BTreeSet<u128>>,
    /// Placement overrides: shards moved off their home disk by
    /// [`Node::migrate`]. Absent entries use hash placement.
    placement: Mutex<std::collections::BTreeMap<u128, usize>>,
    /// Shards currently mid-migration: writes wait for the latch so a
    /// concurrent put cannot land on the source after its copy was taken
    /// (it would be wiped by the source delete).
    migrating: Mutex<BTreeSet<u128>>,
    config: StoreConfig,
    geometry: Geometry,
    faults: FaultConfig,
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node").field("disks", &self.inner.disks.len()).finish()
    }
}

impl Node {
    /// Creates a node with `num_disks` freshly formatted disks.
    pub fn new(
        num_disks: usize,
        geometry: Geometry,
        config: StoreConfig,
        faults: FaultConfig,
    ) -> Self {
        assert!(num_disks > 0, "a node needs at least one disk");
        let disks = (0..num_disks)
            .map(|_| {
                let store = Store::format(geometry, config, faults.clone());
                let sched = store.scheduler();
                Mutex::new(DiskSlot { store: Some(store), sched: Some(sched) })
            })
            .collect();
        Self {
            inner: Arc::new(NodeInner {
                disks,
                catalog: Mutex::new(BTreeSet::new()),
                placement: Mutex::new(std::collections::BTreeMap::new()),
                migrating: Mutex::new(BTreeSet::new()),
                config,
                geometry,
                faults,
            }),
        }
    }

    /// Number of disk slots (including removed ones).
    pub fn disk_count(&self) -> usize {
        self.inner.disks.len()
    }

    /// Routes a shard id to its disk slot: a placement override from a
    /// migration, or the hash-based home disk.
    pub fn route(&self, shard: u128) -> usize {
        if let Some(disk) = self.inner.placement.lock().get(&shard) {
            return *disk;
        }
        self.home_disk(shard)
    }

    /// The hash-based home disk of a shard (ignoring migrations).
    pub fn home_disk(&self, shard: u128) -> usize {
        (shard % self.inner.disks.len() as u128) as usize
    }

    fn store_for(&self, shard: u128) -> Result<Store, StoreError> {
        let slot = self.inner.disks[self.route(shard)].lock();
        slot.store.clone().ok_or(StoreError::OutOfService)
    }

    /// Blocks (cooperatively) while `shard` is mid-migration.
    fn wait_not_migrating(&self, shard: u128) {
        loop {
            if !self.inner.migrating.lock().contains(&shard) {
                return;
            }
            shardstore_conc::thread::yield_now();
        }
    }

    /// The store on a specific disk, if in service (test support).
    pub fn store(&self, disk: usize) -> Option<Store> {
        self.inner.disks[disk].lock().store.clone()
    }

    /// Stores a shard (request plane). Writes wait out an in-flight
    /// migration of the same shard.
    pub fn put(&self, shard: u128, data: &[u8]) -> Result<Dependency, StoreError> {
        loop {
            self.wait_not_migrating(shard);
            let disk = self.route(shard);
            let store = self.store_for(shard)?;
            // Fixed code keeps catalog and index consistent by updating
            // both under the catalog lock; re-validate the route under
            // the lock so a migration that slipped in retries the write.
            let mut catalog = self.inner.catalog.lock();
            if self.route(shard) != disk || self.inner.migrating.lock().contains(&shard) {
                drop(catalog);
                continue;
            }
            let dep = store.put(shard, data)?;
            catalog.insert(shard);
            return Ok(dep);
        }
    }

    /// Reads a shard (request plane). Reads racing a migration retry when
    /// the placement moved under them.
    pub fn get(&self, shard: u128) -> Result<Option<Vec<u8>>, StoreError> {
        loop {
            let disk = self.route(shard);
            let store = self.store_for(shard)?;
            let got = store.get(shard)?;
            if got.is_none() && self.route(shard) != disk {
                // The shard moved between routing and reading; retry on
                // the new placement.
                shardstore_conc::yield_now();
                continue;
            }
            return Ok(got);
        }
    }

    /// Deletes a shard (request plane). Waits out in-flight migrations
    /// like [`Node::put`].
    pub fn delete(&self, shard: u128) -> Result<Dependency, StoreError> {
        loop {
            self.wait_not_migrating(shard);
            let disk = self.route(shard);
            let store = self.store_for(shard)?;
            let mut catalog = self.inner.catalog.lock();
            if self.route(shard) != disk || self.inner.migrating.lock().contains(&shard) {
                drop(catalog);
                continue;
            }
            let dep = store.delete(shard)?;
            catalog.remove(&shard);
            return Ok(dep);
        }
    }

    /// Control plane: the catalog of shards believed to exist.
    pub fn list(&self) -> Vec<u128> {
        self.inner.catalog.lock().iter().copied().collect()
    }

    /// Control plane: list shards with their sizes, verifying each one by
    /// reading it. The fixed code tolerates shards vanishing between the
    /// catalog snapshot and the per-shard read (a concurrent delete);
    /// with [`BugId::B13ListRemoveRace`] seeded it asserts they still
    /// exist, reproducing the issue #13 race.
    pub fn list_verified(&self) -> Result<Vec<(u128, usize)>, StoreError> {
        let shards = self.list();
        let mut out = Vec::with_capacity(shards.len());
        for shard in shards {
            // Scheduling point: a concurrent removal can interleave here.
            shardstore_conc::yield_now();
            let data = self.get(shard)?;
            if self.inner.faults.is(BugId::B13ListRemoveRace) {
                // BUG B13 (seeded): "a listed shard always exists".
                let data = data.expect("listed shard must exist");
                out.push((shard, data.len()));
            } else if let Some(data) = data {
                out.push((shard, data.len()));
            } else {
                coverage::hit("node.list.shard_vanished");
            }
        }
        Ok(out)
    }

    /// Control plane: bulk-create shards. With
    /// [`BugId::B16BulkOpsRace`] seeded, the index writes and the catalog
    /// updates happen in separate phases, racing with bulk removal.
    pub fn bulk_create(&self, shards: &[(u128, Vec<u8>)]) -> Result<Vec<Dependency>, StoreError> {
        let mut deps = Vec::with_capacity(shards.len());
        if self.inner.faults.is(BugId::B16BulkOpsRace) {
            // BUG B16 (seeded): phase 1 writes every shard...
            for (shard, data) in shards {
                let store = self.store_for(*shard)?;
                deps.push(store.put(*shard, data)?);
            }
            shardstore_conc::yield_now();
            // ...phase 2 updates the catalog afterwards.
            let mut catalog = self.inner.catalog.lock();
            for (shard, _) in shards {
                catalog.insert(*shard);
            }
        } else {
            for (shard, data) in shards {
                deps.push(self.put(*shard, data)?);
            }
        }
        coverage::hit("node.bulk_create");
        Ok(deps)
    }

    /// Control plane: bulk-remove shards (see [`Node::bulk_create`] for
    /// the seeded race).
    pub fn bulk_remove(&self, shards: &[u128]) -> Result<Vec<Dependency>, StoreError> {
        let mut deps = Vec::with_capacity(shards.len());
        if self.inner.faults.is(BugId::B16BulkOpsRace) {
            // BUG B16 (seeded): catalog first...
            {
                let mut catalog = self.inner.catalog.lock();
                for shard in shards {
                    catalog.remove(shard);
                }
            }
            shardstore_conc::yield_now();
            // ...index second.
            for shard in shards {
                let store = self.store_for(*shard)?;
                deps.push(store.delete(*shard)?);
            }
        } else {
            for shard in shards {
                deps.push(self.delete(*shard)?);
            }
        }
        coverage::hit("node.bulk_remove");
        Ok(deps)
    }

    /// Control plane: removes a disk from service (e.g. for repair). The
    /// store is cleanly shut down; its catalog entries are dropped (the
    /// shards live on other replicas while the disk is away).
    pub fn remove_disk(&self, disk: usize) -> Result<(), StoreError> {
        let mut slot = self.inner.disks[disk].lock();
        let Some(store) = slot.store.take() else {
            return Err(StoreError::OutOfService);
        };
        store.clean_shutdown()?;
        let shards = store.list()?;
        {
            let mut catalog = self.inner.catalog.lock();
            for s in shards {
                catalog.remove(&s);
            }
        }
        if self.inner.faults.is(BugId::B4DiskRemovalLosesShards) {
            // BUG B4 (seeded): removal dropped the handle to the disk
            // itself, so a later return has nothing to recover from.
            slot.sched = None;
        }
        store.set_in_service(false);
        coverage::hit("node.remove_disk");
        Ok(())
    }

    /// Control plane: returns a previously removed disk to service,
    /// recovering its contents. With [`BugId::B4DiskRemovalLosesShards`]
    /// seeded, the disk comes back freshly formatted instead — losing
    /// every shard it held.
    pub fn return_disk(&self, disk: usize) -> Result<(), StoreError> {
        let mut slot = self.inner.disks[disk].lock();
        if slot.store.is_some() {
            return Ok(());
        }
        let store = match slot.sched.clone() {
            Some(sched) => {
                Store::recover(sched, self.inner.config, self.inner.faults.clone())?
            }
            None => {
                // B4's buggy path: nothing to recover; format fresh.
                let store =
                    Store::format(self.inner.geometry, self.inner.config, self.inner.faults.clone());
                slot.sched = Some(store.scheduler());
                store
            }
        };
        let shards = store.list()?;
        {
            let mut catalog = self.inner.catalog.lock();
            for s in shards {
                catalog.insert(s);
            }
        }
        slot.store = Some(store);
        coverage::hit("node.return_disk");
        Ok(())
    }

    /// Control plane: migrates a shard to another disk (the repair /
    /// rebalancing primitive of §2.1's RPC interface). Copies the data to
    /// the target store, flips the placement override, then deletes the
    /// source copy — in that order, so a crash of this process never
    /// loses the shard. Returns the target store's put dependency.
    pub fn migrate(&self, shard: u128, to_disk: usize) -> Result<Dependency, StoreError> {
        assert!(to_disk < self.inner.disks.len(), "no such disk");
        // Latch the shard: writes wait until the move completes (only one
        // migration per shard at a time).
        loop {
            let mut migrating = self.inner.migrating.lock();
            if migrating.insert(shard) {
                break;
            }
            drop(migrating);
            shardstore_conc::thread::yield_now();
        }
        let result = self.migrate_locked(shard, to_disk);
        self.inner.migrating.lock().remove(&shard);
        result
    }

    fn migrate_locked(&self, shard: u128, to_disk: usize) -> Result<Dependency, StoreError> {
        // Hold the catalog lock across the copy→flip→delete transition:
        // request-plane writes perform their route re-validation and
        // store write under the same lock, so no write can slip between
        // our copy and the source deletion and be silently wiped.
        let _catalog = self.inner.catalog.lock();
        let from_disk = self.route(shard);
        let source = self.inner.disks[from_disk].lock().store.clone();
        let target = self.inner.disks[to_disk].lock().store.clone();
        let (Some(source), Some(target)) = (source, target) else {
            return Err(StoreError::OutOfService);
        };
        let Some(data) = source.get(shard)? else {
            // Nothing to move; clear any stale override.
            if from_disk == self.home_disk(shard) {
                self.inner.placement.lock().remove(&shard);
            }
            return Ok(target.scheduler().none());
        };
        if from_disk == to_disk {
            return Ok(target.scheduler().none());
        }
        // 1. Copy to the target.
        let dep = target.put(shard, &data)?;
        // 2. Flip placement: reads now go to the target.
        {
            let mut placement = self.inner.placement.lock();
            if to_disk == self.home_disk(shard) {
                placement.remove(&shard);
            } else {
                placement.insert(shard, to_disk);
            }
        }
        // 3. Drop the source copy (its space is reclaimed by GC).
        source.delete(shard)?;
        coverage::hit("node.migrate");
        Ok(dep)
    }

    /// The placement override table (test/inspection support).
    pub fn placements(&self) -> Vec<(u128, usize)> {
        self.inner.placement.lock().iter().map(|(s, d)| (*s, *d)).collect()
    }

    /// Checks that the control-plane catalog matches the union of the
    /// per-disk indexes (the invariant the issue #16 race violates).
    pub fn check_catalog_consistent(&self) -> Result<(), String> {
        let catalog: BTreeSet<u128> = self.inner.catalog.lock().iter().copied().collect();
        let mut actual = BTreeSet::new();
        for slot in &self.inner.disks {
            let store = slot.lock().store.clone();
            if let Some(store) = store {
                match store.list() {
                    Ok(keys) => actual.extend(keys),
                    Err(e) => return Err(format!("listing failed: {e}")),
                }
            }
        }
        if catalog != actual {
            return Err(format!(
                "catalog/index divergence: catalog {catalog:?} vs index {actual:?}"
            ));
        }
        Ok(())
    }

    /// Pumps every in-service disk's IO to completion.
    pub fn pump_all(&self) -> Result<(), StoreError> {
        for slot in &self.inner.disks {
            let store = slot.lock().store.clone();
            if let Some(store) = store {
                store.pump()?;
            }
        }
        Ok(())
    }

    /// Cleanly shuts down every in-service disk.
    pub fn clean_shutdown_all(&self) -> Result<(), StoreError> {
        for slot in &self.inner.disks {
            let store = slot.lock().store.clone();
            if let Some(store) = store {
                store.clean_shutdown()?;
            }
        }
        Ok(())
    }
}
