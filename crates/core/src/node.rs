//! The storage node: multiple per-disk stores behind one request router,
//! plus the control-plane operations (§2.1 "RPC interface").
//!
//! ShardStore runs on hosts with multiple HDDs; each disk is an isolated
//! failure domain running an independent key-value store, and a shared
//! RPC layer steers requests to target disks by shard id. The control
//! plane adds listing, bulk create/remove, and disk removal/return for
//! migration and repair.
//!
//! The control-plane catalog is sharded per disk ([`Node::list_disk`]):
//! request-plane writes to different disks touch different catalog locks,
//! so the parallel request plane ([`crate::engine`]) scales with disk
//! count instead of serializing every put behind one node-global mutex.
//! The invariant checked by [`Node::check_catalog_consistent`] is
//! correspondingly per-disk: catalog shard *d* must equal disk *d*'s
//! index keys.
//!
//! Three of the paper's Fig. 5 issues live at this layer and are seeded
//! here:
//!
//! - [`BugId::B4DiskRemovalLosesShards`]: returning a previously removed
//!   disk reformatted it instead of recovering it.
//! - [`BugId::B13ListRemoveRace`]: the control-plane listing walked shards
//!   while a removal ran, then asserted that every listed shard still
//!   existed.
//! - [`BugId::B16BulkOpsRace`]: bulk create and bulk remove updated the
//!   index and the control-plane catalog in separate phases, letting a
//!   race leave them inconsistent.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use shardstore_conc::sync::Mutex;
use shardstore_dependency::Dependency;
use shardstore_faults::{coverage, BugId, FaultConfig};
use shardstore_obs::Obs;
use shardstore_vdisk::Geometry;

use crate::config::NodeConfig;
use crate::store::{Store, StoreConfig, StoreError};
use shardstore_cache::ValueBuf;

/// A multi-disk storage node. Cheap to clone.
#[derive(Clone)]
pub struct Node {
    inner: Arc<NodeInner>,
}

struct DiskSlot {
    /// The active store, or `None` while the disk is removed from
    /// service.
    store: Option<Store>,
    /// The disk's IO scheduler, retained across removal so the disk's
    /// contents survive (dropping it is the essence of bug B4).
    sched: Option<shardstore_dependency::IoScheduler>,
}

struct NodeInner {
    disks: Vec<Mutex<DiskSlot>>,
    /// Control-plane catalogs of shards believed to exist, one per disk
    /// slot. Sharded so writes routed to different disks never contend;
    /// each shard's entry lives in the catalog of the disk it is routed
    /// to, and the fixed code paths keep catalog shard and disk index
    /// consistent by updating both under that disk's catalog lock.
    catalogs: Vec<Mutex<BTreeSet<u128>>>,
    /// Placement overrides: shards moved off their home disk by
    /// [`Node::migrate`]. Absent entries use hash placement.
    placement: Mutex<BTreeMap<u128, usize>>,
    /// Shards currently mid-migration: writes wait for the latch so a
    /// concurrent put cannot land on the source after its copy was taken
    /// (it would be wiped by the source delete).
    migrating: Mutex<BTreeSet<u128>>,
    config: StoreConfig,
    geometry: Geometry,
    faults: FaultConfig,
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node").field("disks", &self.inner.disks.len()).finish()
    }
}

impl Node {
    /// Creates a node with `num_disks` freshly formatted disks.
    pub fn new(
        num_disks: usize,
        geometry: Geometry,
        config: StoreConfig,
        faults: FaultConfig,
    ) -> Self {
        assert!(num_disks > 0, "a node needs at least one disk");
        let disks = (0..num_disks)
            .map(|_| {
                let store = Store::format(geometry, config.clone(), faults.clone());
                let sched = store.scheduler();
                Mutex::new(DiskSlot { store: Some(store), sched: Some(sched) })
            })
            .collect();
        let catalogs = (0..num_disks).map(|_| Mutex::new(BTreeSet::new())).collect();
        Self {
            inner: Arc::new(NodeInner {
                disks,
                catalogs,
                placement: Mutex::new(BTreeMap::new()),
                migrating: Mutex::new(BTreeSet::new()),
                config,
                geometry,
                faults,
            }),
        }
    }

    /// Creates a node from a validated [`NodeConfig`] (see
    /// [`NodeConfig::builder`]).
    pub fn from_config(config: &NodeConfig) -> Self {
        Self::new(config.disks, config.geometry, config.store.clone(), config.faults.clone())
    }

    /// Number of disk slots (including removed ones).
    pub fn disk_count(&self) -> usize {
        self.inner.disks.len()
    }

    /// Routes a shard id to its disk slot: a placement override from a
    /// migration, or the hash-based home disk.
    pub fn route(&self, shard: u128) -> usize {
        if let Some(disk) = self.inner.placement.lock().get(&shard) {
            return *disk;
        }
        self.home_disk(shard)
    }

    /// The hash-based home disk of a shard (ignoring migrations).
    pub fn home_disk(&self, shard: u128) -> usize {
        (shard % self.inner.disks.len() as u128) as usize
    }

    fn store_at(&self, disk: usize) -> Result<Store, StoreError> {
        let slot = self.inner.disks[disk].lock();
        slot.store.clone().ok_or(StoreError::OutOfService)
    }

    /// Blocks (cooperatively) while `shard` is mid-migration.
    fn wait_not_migrating(&self, shard: u128) {
        loop {
            if !self.inner.migrating.lock().contains(&shard) {
                return;
            }
            shardstore_conc::thread::yield_now();
        }
    }

    /// The store on a specific disk, if in service (test support).
    pub fn store(&self, disk: usize) -> Option<Store> {
        self.inner.disks[disk].lock().store.clone()
    }

    /// The observability root of a disk slot. Rooted at the slot's IO
    /// scheduler, so it survives removal from service; `None` only on
    /// B4's buggy path where removal dropped the disk handle.
    pub fn disk_obs(&self, disk: usize) -> Option<Obs> {
        self.inner.disks[disk].lock().sched.as_ref().map(|s| s.obs())
    }

    /// Backend kind and cumulative disk-level IO statistics of a slot.
    /// Rooted at the slot's IO scheduler like [`Node::disk_obs`], so the
    /// counters stay readable while the disk is out of service; `None`
    /// only on B4's buggy path where removal dropped the disk handle.
    pub fn disk_stats(
        &self,
        disk: usize,
    ) -> Option<(&'static str, shardstore_vdisk::DiskStats)> {
        self.inner.disks[disk]
            .lock()
            .sched
            .as_ref()
            .map(|s| (s.disk().backend_kind(), s.disk().stats()))
    }

    /// Stores a shard (request plane). Writes wait out an in-flight
    /// migration of the same shard.
    pub fn put(&self, shard: u128, data: &[u8]) -> Result<Dependency, StoreError> {
        loop {
            self.wait_not_migrating(shard);
            let disk = self.route(shard);
            let store = self.store_at(disk)?;
            // Fixed code keeps catalog shard and index consistent by
            // updating both under the disk's catalog lock; re-validate
            // the route under the lock so a migration that slipped in
            // retries the write.
            let mut catalog = self.inner.catalogs[disk].lock();
            if self.route(shard) != disk || self.inner.migrating.lock().contains(&shard) {
                drop(catalog);
                continue;
            }
            let dep = store.put(shard, data)?;
            catalog.insert(shard);
            return Ok(dep);
        }
    }

    /// Stores several shards, grouping those routed to the same disk into
    /// one [`Store::put_batch`] (one dependency group, coalesced IO).
    /// Atomicity is per element, exactly like issuing the puts one at a
    /// time; returned dependencies are in input order. This is the funnel
    /// the engine's batched dispatch feeds (§2.1's request plane meeting
    /// PR 2's group commit).
    pub fn put_batch(&self, shards: &[(u128, Vec<u8>)]) -> Result<Vec<Dependency>, StoreError> {
        let mut deps: Vec<Option<Dependency>> = (0..shards.len()).map(|_| None).collect();
        let mut remaining: Vec<usize> = (0..shards.len()).collect();
        while !remaining.is_empty() {
            for &i in &remaining {
                self.wait_not_migrating(shards[i].0);
            }
            // Snapshot routes, group by disk, then re-validate each group
            // under its disk's catalog lock (same protocol as `put`).
            let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
            for &i in &remaining {
                groups.entry(self.route(shards[i].0)).or_default().push(i);
            }
            let mut retry = Vec::new();
            for (disk, idxs) in groups {
                let store = self.store_at(disk)?;
                let mut catalog = self.inner.catalogs[disk].lock();
                let moved = {
                    let migrating = self.inner.migrating.lock();
                    idxs.iter().any(|&i| {
                        self.route(shards[i].0) != disk || migrating.contains(&shards[i].0)
                    })
                };
                if moved {
                    drop(catalog);
                    retry.extend(idxs);
                    continue;
                }
                let batch: Vec<(u128, Vec<u8>)> =
                    idxs.iter().map(|&i| shards[i].clone()).collect();
                let group_deps = store.put_batch(&batch)?;
                for (&i, dep) in idxs.iter().zip(group_deps) {
                    catalog.insert(shards[i].0);
                    deps[i] = Some(dep);
                }
            }
            remaining = retry;
        }
        Ok(deps.into_iter().map(|d| d.expect("every element resolved")).collect())
    }

    /// Reads a shard (request plane) as owned contiguous bytes: the
    /// copy-based compatibility wrapper over [`Node::get_value`].
    pub fn get(&self, shard: u128) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.get_value(shard)?.map(|v| v.to_vec()))
    }

    /// Reads a shard (request plane) as a zero-copy [`ValueBuf`]. Reads
    /// racing a migration retry when the placement moved under them.
    pub fn get_value(&self, shard: u128) -> Result<Option<ValueBuf>, StoreError> {
        loop {
            let disk = self.route(shard);
            let store = self.store_at(disk)?;
            let got = store.get_value(shard)?;
            if got.is_none() && self.route(shard) != disk {
                // The shard moved between routing and reading; retry on
                // the new placement.
                shardstore_conc::yield_now();
                continue;
            }
            return Ok(got);
        }
    }

    /// One disk's slice of a range scan: up to `limit` entries (0 = no
    /// limit) of `[start, end]` from that disk's store, plus whether the
    /// slice was truncated at the limit. The engine's `Scan` fan-out runs
    /// one slice per disk through that disk's executor; an out-of-service
    /// disk contributes an empty slice (its catalog entries were dropped
    /// at removal).
    pub fn scan_disk(
        &self,
        disk: usize,
        start: u128,
        end: u128,
        limit: u32,
    ) -> Result<(Vec<(u128, ValueBuf)>, bool), StoreError> {
        let store = self.inner.disks[disk].lock().store.clone();
        let Some(store) = store else {
            return Ok((Vec::new(), false));
        };
        let mut entries = store.scan(start, end)?;
        let truncated = limit != 0 && entries.len() > limit as usize;
        if truncated {
            entries.truncate(limit as usize);
        }
        Ok((entries, truncated))
    }

    /// Range scan across every disk with keyset pagination: returns up to
    /// `limit` entries (0 = no limit) of `[start, end]` past
    /// `continuation` (exclusive), in ascending key order, plus the
    /// continuation for the next page (`None` when the range is
    /// exhausted). A degraded key surfaces an error — a scan never
    /// silently skips data it cannot read.
    #[allow(clippy::type_complexity)]
    pub fn scan(
        &self,
        start: u128,
        end: u128,
        limit: u32,
        continuation: Option<u128>,
    ) -> Result<(Vec<(u128, ValueBuf)>, Option<u128>), StoreError> {
        let Some(start) = resolve_scan_start(start, end, continuation) else {
            return Ok((Vec::new(), None));
        };
        let mut pieces = Vec::with_capacity(self.disk_count());
        for disk in 0..self.disk_count() {
            pieces.push(self.scan_disk(disk, start, end, limit)?);
        }
        Ok(merge_scan_pages(pieces, limit))
    }

    /// Deletes a shard (request plane). Waits out in-flight migrations
    /// like [`Node::put`].
    pub fn delete(&self, shard: u128) -> Result<Dependency, StoreError> {
        loop {
            self.wait_not_migrating(shard);
            let disk = self.route(shard);
            let store = self.store_at(disk)?;
            let mut catalog = self.inner.catalogs[disk].lock();
            if self.route(shard) != disk || self.inner.migrating.lock().contains(&shard) {
                drop(catalog);
                continue;
            }
            let dep = store.delete(shard)?;
            catalog.remove(&shard);
            return Ok(dep);
        }
    }

    /// Control plane: the catalog of shards believed to exist (the merge
    /// of every disk's catalog shard).
    pub fn list(&self) -> Vec<u128> {
        let mut all = BTreeSet::new();
        for catalog in &self.inner.catalogs {
            all.extend(catalog.lock().iter().copied());
        }
        all.into_iter().collect()
    }

    /// Control plane: the catalog shard of one disk. The engine's `List`
    /// fan-out reads each disk's slice through that disk's executor, so a
    /// listing observes every previously admitted same-disk write.
    pub fn list_disk(&self, disk: usize) -> Vec<u128> {
        self.inner.catalogs[disk].lock().iter().copied().collect()
    }

    /// Control plane: list shards with their sizes, verifying each one by
    /// reading it. The fixed code tolerates shards vanishing between the
    /// catalog snapshot and the per-shard read (a concurrent delete);
    /// with [`BugId::B13ListRemoveRace`] seeded it asserts they still
    /// exist, reproducing the issue #13 race.
    pub fn list_verified(&self) -> Result<Vec<(u128, usize)>, StoreError> {
        let shards = self.list();
        let mut out = Vec::with_capacity(shards.len());
        for shard in shards {
            // Scheduling point: a concurrent removal can interleave here.
            shardstore_conc::yield_now();
            let data = self.get(shard)?;
            if self.inner.faults.is(BugId::B13ListRemoveRace) {
                // BUG B13 (seeded): "a listed shard always exists".
                let data = data.expect("listed shard must exist");
                out.push((shard, data.len()));
            } else if let Some(data) = data {
                out.push((shard, data.len()));
            } else {
                coverage::hit("node.list.shard_vanished");
            }
        }
        Ok(out)
    }

    /// Control plane: bulk-create shards. With
    /// [`BugId::B16BulkOpsRace`] seeded, the index writes and the catalog
    /// updates happen in separate phases, racing with bulk removal.
    pub fn bulk_create(&self, shards: &[(u128, Vec<u8>)]) -> Result<Vec<Dependency>, StoreError> {
        let deps = if self.inner.faults.is(BugId::B16BulkOpsRace) {
            // BUG B16 (seeded): phase 1 writes every shard...
            let mut phase1 = Vec::with_capacity(shards.len());
            for (shard, data) in shards {
                let store = self.store_at(self.route(*shard))?;
                phase1.push(store.put(*shard, data)?);
            }
            shardstore_conc::yield_now();
            // ...phase 2 updates the catalog afterwards.
            for (shard, _) in shards {
                self.inner.catalogs[self.route(*shard)].lock().insert(*shard);
            }
            phase1
        } else {
            self.put_batch(shards)?
        };
        coverage::hit("node.bulk_create");
        Ok(deps)
    }

    /// Control plane: bulk-remove shards (see [`Node::bulk_create`] for
    /// the seeded race).
    pub fn bulk_remove(&self, shards: &[u128]) -> Result<Vec<Dependency>, StoreError> {
        let mut deps = Vec::with_capacity(shards.len());
        if self.inner.faults.is(BugId::B16BulkOpsRace) {
            // BUG B16 (seeded): catalog first...
            for shard in shards {
                self.inner.catalogs[self.route(*shard)].lock().remove(shard);
            }
            shardstore_conc::yield_now();
            // ...index second.
            for shard in shards {
                let store = self.store_at(self.route(*shard))?;
                deps.push(store.delete(*shard)?);
            }
        } else {
            for shard in shards {
                deps.push(self.delete(*shard)?);
            }
        }
        coverage::hit("node.bulk_remove");
        Ok(deps)
    }

    /// Control plane: removes a disk from service (e.g. for repair). The
    /// store is cleanly shut down; its catalog entries are dropped (the
    /// shards live on other replicas while the disk is away).
    pub fn remove_disk(&self, disk: usize) -> Result<(), StoreError> {
        let mut slot = self.inner.disks[disk].lock();
        let Some(store) = slot.store.take() else {
            return Err(StoreError::OutOfService);
        };
        store.clean_shutdown()?;
        let shards = store.list()?;
        {
            let mut catalog = self.inner.catalogs[disk].lock();
            for s in shards {
                catalog.remove(&s);
            }
        }
        if self.inner.faults.is(BugId::B4DiskRemovalLosesShards) {
            // BUG B4 (seeded): removal dropped the handle to the disk
            // itself, so a later return has nothing to recover from.
            slot.sched = None;
        }
        store.set_in_service(false);
        coverage::hit("node.remove_disk");
        Ok(())
    }

    /// Control plane: returns a previously removed disk to service,
    /// recovering its contents. With [`BugId::B4DiskRemovalLosesShards`]
    /// seeded, the disk comes back freshly formatted instead — losing
    /// every shard it held.
    pub fn return_disk(&self, disk: usize) -> Result<(), StoreError> {
        let mut slot = self.inner.disks[disk].lock();
        if slot.store.is_some() {
            return Ok(());
        }
        let store = match slot.sched.clone() {
            Some(sched) => {
                Store::recover(sched, self.inner.config.clone(), self.inner.faults.clone())?
            }
            None => {
                // B4's buggy path: nothing to recover; format fresh.
                let store = Store::format(
                    self.inner.geometry,
                    self.inner.config.clone(),
                    self.inner.faults.clone(),
                );
                slot.sched = Some(store.scheduler());
                store
            }
        };
        let shards = store.list()?;
        {
            let mut catalog = self.inner.catalogs[disk].lock();
            for s in shards {
                catalog.insert(s);
            }
        }
        slot.store = Some(store);
        coverage::hit("node.return_disk");
        Ok(())
    }

    /// Control plane: migrates a shard to another disk (the repair /
    /// rebalancing primitive of §2.1's RPC interface). Copies the data to
    /// the target store, flips the placement override, then deletes the
    /// source copy — in that order, so a crash of this process never
    /// loses the shard. Returns the target store's put dependency.
    pub fn migrate(&self, shard: u128, to_disk: usize) -> Result<Dependency, StoreError> {
        assert!(to_disk < self.inner.disks.len(), "no such disk");
        // Latch the shard: writes wait until the move completes (only one
        // migration per shard at a time).
        loop {
            let mut migrating = self.inner.migrating.lock();
            if migrating.insert(shard) {
                break;
            }
            drop(migrating);
            shardstore_conc::thread::yield_now();
        }
        let result = self.migrate_locked(shard, to_disk);
        self.inner.migrating.lock().remove(&shard);
        result
    }

    fn migrate_locked(&self, shard: u128, to_disk: usize) -> Result<Dependency, StoreError> {
        // The route is stable here: only migrations move placements, and
        // the `migrating` latch admits one migration per shard at a time.
        let from_disk = self.route(shard);
        let source = self.inner.disks[from_disk].lock().store.clone();
        let target = self.inner.disks[to_disk].lock().store.clone();
        let (Some(source), Some(target)) = (source, target) else {
            return Err(StoreError::OutOfService);
        };
        if from_disk == to_disk {
            return Ok(target.scheduler().none());
        }
        // Hold both disks' catalog locks (acquired in slot order, so
        // concurrent migrations cannot deadlock) across the
        // copy→flip→delete transition: request-plane writes re-validate
        // their route under their disk's catalog lock, so no write can
        // slip between our copy and the source deletion and be silently
        // wiped.
        let (lo, hi) = (from_disk.min(to_disk), from_disk.max(to_disk));
        let mut lo_cat = self.inner.catalogs[lo].lock();
        let mut hi_cat = self.inner.catalogs[hi].lock();
        let (from_cat, to_cat) = if from_disk < to_disk {
            (&mut lo_cat, &mut hi_cat)
        } else {
            (&mut hi_cat, &mut lo_cat)
        };
        let Some(data) = source.get(shard)? else {
            // Nothing to move; clear any stale override.
            if from_disk == self.home_disk(shard) {
                self.inner.placement.lock().remove(&shard);
            }
            return Ok(target.scheduler().none());
        };
        // 1. Copy to the target (catalog shard updated with it).
        let dep = target.put(shard, &data)?;
        to_cat.insert(shard);
        // 2. Flip placement: reads now go to the target.
        {
            let mut placement = self.inner.placement.lock();
            if to_disk == self.home_disk(shard) {
                placement.remove(&shard);
            } else {
                placement.insert(shard, to_disk);
            }
        }
        // 3. Drop the source copy (its space is reclaimed by GC).
        source.delete(shard)?;
        from_cat.remove(&shard);
        coverage::hit("node.migrate");
        Ok(dep)
    }

    /// The placement override table (test/inspection support).
    pub fn placements(&self) -> Vec<(u128, usize)> {
        self.inner.placement.lock().iter().map(|(s, d)| (*s, *d)).collect()
    }

    /// Checks that each disk's control-plane catalog shard matches that
    /// disk's index (the invariant the issue #16 race violates). Sharding
    /// made the invariant *stronger*: a shard recorded in the right
    /// catalog but on the wrong disk now fails the check too.
    pub fn check_catalog_consistent(&self) -> Result<(), String> {
        for (disk, slot) in self.inner.disks.iter().enumerate() {
            let store = slot.lock().store.clone();
            let catalog: BTreeSet<u128> =
                self.inner.catalogs[disk].lock().iter().copied().collect();
            let Some(store) = store else {
                if !catalog.is_empty() {
                    return Err(format!(
                        "catalog shard for out-of-service disk {disk} not empty: {catalog:?}"
                    ));
                }
                continue;
            };
            match store.list() {
                Ok(keys) => {
                    let actual: BTreeSet<u128> = keys.into_iter().collect();
                    if catalog != actual {
                        return Err(format!(
                            "catalog/index divergence on disk {disk}: catalog {catalog:?} vs index {actual:?}"
                        ));
                    }
                }
                Err(e) => return Err(format!("listing failed: {e}")),
            }
        }
        Ok(())
    }

    /// Pumps every in-service disk's IO to completion.
    pub fn pump_all(&self) -> Result<(), StoreError> {
        for slot in &self.inner.disks {
            let store = slot.lock().store.clone();
            if let Some(store) = store {
                store.pump()?;
            }
        }
        Ok(())
    }

    /// Cleanly shuts down every in-service disk.
    pub fn clean_shutdown_all(&self) -> Result<(), StoreError> {
        for slot in &self.inner.disks {
            let store = slot.lock().store.clone();
            if let Some(store) = store {
                store.clean_shutdown()?;
            }
        }
        Ok(())
    }
}

/// Resolves a scan's effective start key from its continuation: the page
/// resumes just past the last key already returned. `None` means the
/// range is already exhausted (empty page, no continuation).
pub(crate) fn resolve_scan_start(start: u128, end: u128, continuation: Option<u128>) -> Option<u128> {
    let start = match continuation {
        // The previous page ended at the top of the key space.
        Some(c) => c.checked_add(1)?.max(start),
        None => start,
    };
    (start <= end).then_some(start)
}

/// Merges per-disk scan slices into one page of at most `limit` entries
/// (0 = no limit) and computes the next-page continuation.
///
/// Correctness of the global cut: a slice truncated at `limit` entries
/// still contains *at least* `limit` keys, each ≤ its own last key, so
/// the merged page's cutoff key is ≤ every truncated slice's last key —
/// no key below the cutoff can be missing from a truncated slice. A
/// continuation is returned iff any entry beyond the page is known to
/// exist (the merge overflowed the limit, or some slice truncated).
pub(crate) fn merge_scan_pages(
    pieces: Vec<(Vec<(u128, ValueBuf)>, bool)>,
    limit: u32,
) -> (Vec<(u128, ValueBuf)>, Option<u128>) {
    let mut more = false;
    let mut all: Vec<(u128, ValueBuf)> = Vec::new();
    for (entries, truncated) in pieces {
        more |= truncated;
        all.extend(entries);
    }
    all.sort_by_key(|(k, _)| *k);
    // Routing makes placements exclusive, but a scan racing a migration
    // can observe a shard on both the source and destination disk; keep
    // one copy.
    all.dedup_by_key(|(k, _)| *k);
    if limit != 0 && all.len() > limit as usize {
        all.truncate(limit as usize);
        more = true;
    }
    let next = if more { all.last().map(|(k, _)| *k) } else { None };
    (all, next)
}
