//! The parallel request plane: a router plus per-disk executors replacing
//! the old single-threaded serve loop.
//!
//! ShardStore's node hosts many disks, each an isolated failure domain;
//! a request plane that drains one channel through a synchronous
//! dispatch cannot scale with disk count. The [`Engine`] gives every
//! disk slot its own executor — one worker, one bounded admission queue
//! — fed by a router keyed on [`Node::route`]:
//!
//! - requests for *different* disks run concurrently;
//! - requests for the *same* disk stay FIFO (one worker per queue);
//! - `List`/`BulkCreate`/`BulkRemove` fan out one piece per target disk
//!   and a join block aggregates the pieces into a single response;
//! - admission is bounded: a request targeting a full queue is rejected
//!   with a typed [`ErrorCode::Overloaded`] error (and an
//!   `RpcOverloaded` trace event plus an `rpc.overloaded` counter in the
//!   disk's [`Obs`]) instead of queueing unboundedly;
//! - executors practice batched dispatch: the leading run of consecutive
//!   puts in a queue is funnelled into one [`Node::put_batch`]
//!   (group commit; see PR 2), never reordering a put past a later read.
//!
//! The engine is dual-mode like everything else: [`conc::thread::spawn`]
//! gives OS-thread workers in passthrough mode and controlled tasks
//! under the stateless model checker, and every queue is built from
//! `conc` mutexes and condvars so the checker owns each interleaving.
//! Checked executions must call [`Engine::shutdown`] before the closure
//! ends (the quiesce rule).
//!
//! [`conc::thread::spawn`]: shardstore_conc::thread::spawn

use std::collections::VecDeque;
use std::sync::Arc;

use shardstore_cache::ValueBuf;
use shardstore_conc as conc;
use shardstore_conc::sync::{Condvar, Mutex};
use shardstore_obs::{Counter, Gauge, Obs, TraceEvent};

use crate::config::EngineConfig;
use crate::node::{merge_scan_pages, resolve_scan_start, Node};
use crate::rpc::{self, ErrorCode, Request, Response, RpcError, WireError};

/// A running request plane over a [`Node`]. Cheap to clone; the workers
/// stop when [`Engine::shutdown`] runs or every handle is dropped.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

/// A handle for issuing requests to an [`Engine`]. Cheap to clone;
/// usable from any thread (or checked task).
#[derive(Clone)]
pub struct RpcClient {
    inner: Arc<EngineInner>,
}

/// An in-flight request submitted with [`RpcClient::call_nowait`].
pub struct PendingReply {
    reply: Arc<Reply>,
}

impl PendingReply {
    /// Blocks (cooperatively under the checker) until the response is
    /// ready.
    pub fn wait(self) -> Response {
        self.reply.wait()
    }

    /// Returns the response if it is already ready, without blocking.
    pub fn poll(&self) -> Option<Response> {
        self.reply.state.lock().clone()
    }
}

struct EngineInner {
    node: Node,
    config: EngineConfig,
    executors: Vec<Arc<Executor>>,
    workers: Mutex<Vec<conc::thread::JoinHandle<()>>>,
}

struct Executor {
    disk: u32,
    state: Mutex<ExecState>,
    /// Signalled when work arrives, the executor is resumed, or the
    /// engine closes.
    work_cv: Condvar,
    /// The disk's observability root (absent only when B4's buggy
    /// removal dropped the disk handle).
    obs: Option<Obs>,
    depth_gauge: Option<Gauge>,
    overloaded_ctr: Option<Counter>,
    batch_ctr: Option<Counter>,
    scan_ctr: Option<Counter>,
}

struct ExecState {
    queue: VecDeque<Job>,
    closed: bool,
    /// Test support: a paused executor admits but does not execute, so a
    /// test can saturate the admission queue deterministically.
    paused: bool,
}

enum Job {
    /// A single-disk request answered directly. `req_id` is the causal
    /// request id minted at admission from the target disk's [`Obs`]
    /// (absent when the disk has no observability root): the executor
    /// runs the request inside a matching trace frame so every event it
    /// causes is stamped with the id.
    Direct { req: Request, req_id: Option<u64>, reply: Arc<Reply> },
    /// One disk's slice of a fanned-out `List`.
    ListPiece { disk: usize, fan: Arc<ListFan> },
    /// One disk's slice of a fanned-out `BulkCreate`.
    BulkCreatePiece { shards: Vec<(u128, Vec<u8>)>, fan: Arc<BulkFan> },
    /// One disk's slice of a fanned-out `BulkRemove`.
    BulkRemovePiece { shards: Vec<u128>, fan: Arc<BulkFan> },
    /// One disk's slice of a fanned-out `Scan`.
    ScanPiece { disk: usize, start: u128, end: u128, limit: u32, fan: Arc<ScanFan> },
}

/// A one-shot reply slot: the executor fills it, the client waits on it.
struct Reply {
    state: Mutex<Option<Response>>,
    cv: Condvar,
}

impl Reply {
    fn new() -> Arc<Self> {
        Arc::new(Reply { state: Mutex::new(None), cv: Condvar::new() })
    }

    fn set(&self, response: Response) {
        *self.state.lock() = Some(response);
        self.cv.notify_all();
    }

    fn wait(&self) -> Response {
        let mut guard = self.state.lock();
        guard = self.cv.wait_while(guard, |s| s.is_none());
        guard.take().expect("reply present after wait")
    }
}

/// Join block for a fanned-out `List`: pieces merge their catalog slices
/// here; the last one sorts and answers.
struct ListFan {
    state: Mutex<(usize, Vec<u128>)>,
    reply: Arc<Reply>,
}

impl ListFan {
    fn complete(&self, piece: Vec<u128>) {
        let done = {
            let mut state = self.state.lock();
            state.1.extend(piece);
            state.0 -= 1;
            state.0 == 0
        };
        if done {
            let mut all = std::mem::take(&mut self.state.lock().1);
            all.sort_unstable();
            all.dedup();
            self.reply.set(Response::Shards(all));
        }
    }
}

/// Join block for fanned-out bulk ops: the last piece answers `Ok`, or
/// the first error recorded wins.
struct BulkFan {
    state: Mutex<(usize, Option<RpcError>)>,
    reply: Arc<Reply>,
}

impl BulkFan {
    fn complete(&self, result: Result<(), RpcError>) {
        let done = {
            let mut state = self.state.lock();
            if let Err(e) = result {
                state.1.get_or_insert(e);
            }
            state.0 -= 1;
            state.0 == 0
        };
        if done {
            let outcome = self.state.lock().1.take();
            self.reply.set(match outcome {
                Some(e) => Response::Error(e),
                None => Response::Ok,
            });
        }
    }
}

/// Join block for a fanned-out `Scan`: pieces deposit their disk's slice
/// (entries plus a truncation flag); the last one merges the slices into
/// a page and answers. Any piece's error wins — a scan that cannot read
/// a key (e.g. a quarantined extent) reports it rather than silently
/// skipping data.
struct ScanFan {
    state: ScanFanState,
    limit: u32,
    reply: Arc<Reply>,
}

type ScanFanState = Mutex<(usize, Vec<(Vec<(u128, ValueBuf)>, bool)>, Option<RpcError>)>;

impl ScanFan {
    fn complete(&self, result: Result<(Vec<(u128, ValueBuf)>, bool), RpcError>) {
        let done = {
            let mut state = self.state.lock();
            match result {
                Ok(piece) => state.1.push(piece),
                Err(e) => {
                    state.2.get_or_insert(e);
                }
            }
            state.0 -= 1;
            state.0 == 0
        };
        if done {
            let mut state = self.state.lock();
            if let Some(e) = state.2.take() {
                self.reply.set(Response::Error(e));
            } else {
                let pieces = std::mem::take(&mut state.1);
                drop(state);
                let (entries, next) = merge_scan_pages(pieces, self.limit);
                self.reply.set(Response::ScanPage { entries, next });
            }
        }
    }
}

impl Executor {
    fn new(disk: u32, obs: Option<Obs>) -> Arc<Self> {
        let depth_gauge = obs.as_ref().map(|o| o.registry().gauge("rpc.queue_depth"));
        let overloaded_ctr = obs.as_ref().map(|o| o.registry().counter("rpc.overloaded"));
        let batch_ctr = obs.as_ref().map(|o| o.registry().counter("rpc.batches"));
        let scan_ctr = obs.as_ref().map(|o| o.registry().counter("rpc.scan"));
        Arc::new(Executor {
            disk,
            state: Mutex::new(ExecState {
                queue: VecDeque::new(),
                closed: false,
                paused: false,
            }),
            work_cv: Condvar::new(),
            obs,
            depth_gauge,
            overloaded_ctr,
            batch_ctr,
            scan_ctr,
        })
    }

    fn set_depth(&self, depth: usize) {
        if let Some(g) = &self.depth_gauge {
            g.set(depth as i64);
        }
    }

    fn note_overloaded(&self, depth: u32) {
        if let Some(c) = &self.overloaded_ctr {
            c.inc();
        }
        if let Some(o) = &self.obs {
            o.trace().event(TraceEvent::RpcOverloaded { disk: self.disk, depth });
        }
    }

    fn note_batch(&self, puts: u32) {
        if let Some(c) = &self.batch_ctr {
            c.inc();
        }
        if let Some(o) = &self.obs {
            o.trace().event(TraceEvent::RpcBatch { disk: self.disk, puts });
        }
    }

    fn note_scan_page(&self, entries: u32) {
        if let Some(c) = &self.scan_ctr {
            c.inc();
        }
        if let Some(o) = &self.obs {
            o.trace().event(TraceEvent::ScanPage { disk: self.disk, entries });
        }
    }
}

fn overloaded(disk: u32) -> Response {
    Response::Error(RpcError::new(
        ErrorCode::Overloaded,
        format!("disk {disk} admission queue full"),
    ))
}

fn server_stopped() -> Response {
    Response::Error(RpcError::new(ErrorCode::ServerStopped, "request plane shut down"))
}

impl Engine {
    /// Starts the request plane over a node: one executor (and one
    /// worker) per disk slot.
    pub fn start(node: Node, config: EngineConfig) -> Self {
        let engine = Self::start_manual(node, config);
        let mut workers = engine.inner.workers.lock();
        for exec in &engine.inner.executors {
            let exec = Arc::clone(exec);
            let node = engine.inner.node.clone();
            workers.push(conc::thread::spawn(move || worker_loop(exec, node, config)));
        }
        drop(workers);
        engine
    }

    /// Starts the request plane with *no* worker threads: admission and
    /// routing work exactly as in [`Engine::start`], but queued jobs only
    /// execute when the caller drives [`Engine::step_disk`] or
    /// [`Engine::drain`]. This hooks the executors to simulated time —
    /// a deterministic event loop decides when each disk's queue makes
    /// progress, so batching and fan-out joins become replayable.
    pub fn start_manual(node: Node, config: EngineConfig) -> Self {
        let executors: Vec<Arc<Executor>> =
            (0..node.disk_count()).map(|d| Executor::new(d as u32, node.disk_obs(d))).collect();
        let inner = Arc::new(EngineInner {
            node: node.clone(),
            config,
            executors,
            workers: Mutex::new(Vec::new()),
        });
        Engine { inner }
    }

    /// Manual mode: executes one dispatch round (a leading put run or a
    /// single job) on `disk`'s queue, on the caller's thread. Returns
    /// false when the queue was empty or the executor is paused.
    pub fn step_disk(&self, disk: usize) -> bool {
        let Some(exec) = self.inner.executors.get(disk) else {
            return false;
        };
        let mut state = exec.state.lock();
        if state.paused || state.queue.is_empty() {
            return false;
        }
        let (mut run, single) = pop_round(&mut state, &self.inner.config);
        exec.set_depth(state.queue.len());
        drop(state);
        dispatch_round(exec, &self.inner.node, &mut run, single);
        true
    }

    /// Manual mode: steps every disk round-robin until all queues are
    /// empty. Returns the number of dispatch rounds executed.
    pub fn drain(&self) -> u64 {
        let mut rounds = 0u64;
        loop {
            let mut progressed = false;
            for disk in 0..self.inner.executors.len() {
                while self.step_disk(disk) {
                    rounds += 1;
                    progressed = true;
                }
            }
            if !progressed {
                return rounds;
            }
        }
    }

    /// A client handle for this engine.
    pub fn client(&self) -> RpcClient {
        RpcClient { inner: Arc::clone(&self.inner) }
    }

    /// The node this engine serves.
    pub fn node(&self) -> &Node {
        &self.inner.node
    }

    /// Test support: stop executing (admission stays open) so a test can
    /// fill an admission queue deterministically.
    pub fn pause(&self) {
        for exec in &self.inner.executors {
            exec.state.lock().paused = true;
        }
    }

    /// Undoes [`Engine::pause`].
    pub fn resume(&self) {
        for exec in &self.inner.executors {
            exec.state.lock().paused = false;
            exec.work_cv.notify_all();
        }
    }

    /// Closes admission, drains every queue, and joins the workers.
    /// Requests submitted after this return [`ErrorCode::ServerStopped`].
    /// Checked executions must call this before the closure ends.
    pub fn shutdown(&self) {
        for exec in &self.inner.executors {
            let mut state = exec.state.lock();
            state.closed = true;
            // A paused engine still drains on shutdown.
            state.paused = false;
            drop(state);
            exec.work_cv.notify_all();
        }
        let workers = std::mem::take(&mut *self.inner.workers.lock());
        for handle in workers {
            let _ = handle.join();
        }
    }
}

impl Drop for EngineInner {
    fn drop(&mut self) {
        // Last handle gone: close so detached workers exit. (They hold
        // the Node and their Executor, not the EngineInner.)
        for exec in &self.executors {
            exec.state.lock().closed = true;
            exec.work_cv.notify_all();
        }
    }
}

impl RpcClient {
    /// Issues a request and blocks for the response.
    pub fn call(&self, request: Request) -> Response {
        self.call_nowait(request).wait()
    }

    /// Issues a request without waiting; the reply is collected from the
    /// returned [`PendingReply`].
    pub fn call_nowait(&self, request: Request) -> PendingReply {
        PendingReply { reply: self.inner.submit(request) }
    }

    /// The wire entry point: decodes a request frame, executes it, and
    /// encodes the response. A frame with an unsupported version byte is
    /// answered with [`ErrorCode::Unsupported`] (encoded at this build's
    /// version); other decode failures answer [`ErrorCode::Malformed`].
    pub fn call_wire(&self, frame: &[u8]) -> Vec<u8> {
        match Request::decode(frame) {
            Ok(req) => self.call(req).encode(),
            Err(e @ WireError::UnsupportedVersion { .. }) => Response::error(e).encode(),
            Err(e) => Response::error(e).encode(),
        }
    }

    /// Typed put.
    pub fn put(&self, shard: u128, data: Vec<u8>) -> Result<(), RpcError> {
        match self.call(Request::Put { shard, data }) {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }

    /// Typed get, materialized to owned contiguous bytes.
    pub fn get(&self, shard: u128) -> Result<Option<Vec<u8>>, RpcError> {
        Ok(self.get_value(shard)?.map(|v| v.to_vec()))
    }

    /// Typed get returning the zero-copy [`ValueBuf`] handle.
    pub fn get_value(&self, shard: u128) -> Result<Option<ValueBuf>, RpcError> {
        match self.call(Request::Get { shard }) {
            Response::Data(data) => Ok(Some(data)),
            Response::NotFound => Ok(None),
            Response::Error(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }

    /// Typed range scan: one page of up to `limit` entries (0 = no
    /// limit) of `[start, end]` past `continuation`, plus the next-page
    /// continuation (`None` when the range is exhausted). Fans out one
    /// slice per disk.
    #[allow(clippy::type_complexity)]
    pub fn scan(
        &self,
        start: u128,
        end: u128,
        limit: u32,
        continuation: Option<u128>,
    ) -> Result<(Vec<(u128, ValueBuf)>, Option<u128>), RpcError> {
        match self.call(Request::Scan { start, end, limit, continuation }) {
            Response::ScanPage { entries, next } => Ok((entries, next)),
            Response::Error(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }

    /// Typed delete.
    pub fn delete(&self, shard: u128) -> Result<(), RpcError> {
        match self.call(Request::Delete { shard }) {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }

    /// Typed listing (fans out across disks, merged sorted).
    pub fn list(&self) -> Result<Vec<u128>, RpcError> {
        match self.call(Request::List) {
            Response::Shards(shards) => Ok(shards),
            Response::Error(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }

    /// Typed bulk create (fans out across disks).
    pub fn bulk_create(&self, shards: Vec<(u128, Vec<u8>)>) -> Result<(), RpcError> {
        match self.call(Request::BulkCreate { shards }) {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }

    /// Typed bulk remove (fans out across disks).
    pub fn bulk_remove(&self, shards: Vec<u128>) -> Result<(), RpcError> {
        match self.call(Request::BulkRemove { shards }) {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }

    /// Typed migration.
    pub fn migrate(&self, shard: u128, to_disk: u32) -> Result<(), RpcError> {
        match self.call(Request::Migrate { shard, to_disk }) {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }

    /// Typed disk removal.
    pub fn remove_disk(&self, disk: u32) -> Result<(), RpcError> {
        match self.call(Request::RemoveDisk { disk }) {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }

    /// Typed health introspection: the JSON report of
    /// [`rpc::introspect`]. Answered inline from observability state, so
    /// it succeeds even while data operations are rejected as
    /// [`ErrorCode::Overloaded`].
    pub fn introspect(&self) -> Result<String, RpcError> {
        match self.call(Request::Introspect) {
            Response::Introspect { json } => Ok(json),
            Response::Error(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }

    /// Typed disk return.
    pub fn return_disk(&self, disk: u32) -> Result<(), RpcError> {
        match self.call(Request::ReturnDisk { disk }) {
            Response::Ok => Ok(()),
            Response::Error(e) => Err(e),
            other => Err(unexpected(&other)),
        }
    }
}

fn unexpected(resp: &Response) -> RpcError {
    RpcError::new(ErrorCode::Malformed, format!("unexpected response shape: {resp:?}"))
}

impl EngineInner {
    fn submit(&self, request: Request) -> Arc<Reply> {
        let reply = Reply::new();
        match request {
            // Introspection is answered inline on the caller's thread,
            // from observability state alone — it never touches an
            // executor queue, so a node whose data plane is rejecting
            // everything as Overloaded still reports its health.
            Request::Introspect => {
                reply.set(rpc::introspect(&self.node));
            }
            Request::Put { shard, .. } | Request::Get { shard } | Request::Delete { shard } => {
                let disk = self.node.route(shard);
                self.enqueue_direct(disk, request, &reply);
            }
            Request::Migrate { shard, to_disk } => {
                if to_disk as usize >= self.node.disk_count() {
                    reply.set(rpc::no_such_disk(to_disk));
                } else {
                    // Migration executes on the *source* executor so it
                    // stays FIFO with writes to the shard's current home.
                    let disk = self.node.route(shard);
                    self.enqueue_direct(disk, Request::Migrate { shard, to_disk }, &reply);
                }
            }
            Request::RemoveDisk { disk } | Request::ReturnDisk { disk } => {
                if disk as usize >= self.node.disk_count() {
                    reply.set(rpc::no_such_disk(disk));
                } else {
                    self.enqueue_direct(disk as usize, request, &reply);
                }
            }
            Request::List => self.submit_list(&reply),
            Request::BulkCreate { shards } => self.submit_bulk_create(shards, &reply),
            Request::BulkRemove { shards } => self.submit_bulk_remove(shards, &reply),
            Request::Scan { start, end, limit, continuation } => {
                self.submit_scan(start, end, limit, continuation, &reply)
            }
        }
        reply
    }

    fn enqueue_direct(&self, disk: usize, req: Request, reply: &Arc<Reply>) {
        let exec = &self.executors[disk];
        let mut state = exec.state.lock();
        if state.closed {
            drop(state);
            reply.set(server_stopped());
            return;
        }
        if state.queue.len() >= self.config.queue_depth {
            let depth = state.queue.len() as u32;
            drop(state);
            exec.note_overloaded(depth);
            reply.set(overloaded(disk as u32));
            return;
        }
        // Mint the causal request id on admission, from the target
        // disk's Obs so request ids and op ids share a counter space.
        // Recorded before the job is visible to the worker, so the
        // admission event precedes every event the request causes.
        let req_id = exec.obs.as_ref().map(|o| o.mint_req());
        if let (Some(o), Some(r)) = (&exec.obs, req_id) {
            o.trace()
                .event_with_req(TraceEvent::ReqAdmitted { req: r, disk: exec.disk }, Some(r));
        }
        state.queue.push_back(Job::Direct { req, req_id, reply: Arc::clone(reply) });
        exec.set_depth(state.queue.len());
        drop(state);
        exec.work_cv.notify_one();
    }

    /// Admits one job per target disk atomically: every target's state
    /// lock is taken in slot order, capacity is verified for all pieces,
    /// and only then are the pieces pushed — a rejected fan-out leaves no
    /// partial pieces behind.
    fn admit_fanout(&self, pieces: Vec<(usize, Job)>, reply: &Arc<Reply>) {
        debug_assert!(pieces.windows(2).all(|w| w[0].0 < w[1].0), "pieces in slot order");
        let mut guards = Vec::with_capacity(pieces.len());
        for (disk, _) in &pieces {
            guards.push(self.executors[*disk].state.lock());
        }
        for ((disk, _), guard) in pieces.iter().zip(&guards) {
            if guard.closed {
                drop(guards);
                reply.set(server_stopped());
                return;
            }
            if guard.queue.len() >= self.config.queue_depth {
                let depth = guard.queue.len() as u32;
                let disk = *disk;
                drop(guards);
                self.executors[disk].note_overloaded(depth);
                reply.set(overloaded(disk as u32));
                return;
            }
        }
        let disks: Vec<usize> = pieces.iter().map(|(d, _)| *d).collect();
        for ((disk, job), guard) in pieces.into_iter().zip(guards.iter_mut()) {
            guard.queue.push_back(job);
            self.executors[disk].set_depth(guard.queue.len());
        }
        drop(guards);
        for disk in disks {
            self.executors[disk].work_cv.notify_one();
        }
    }

    fn submit_list(&self, reply: &Arc<Reply>) {
        let disks = self.node.disk_count();
        let fan = Arc::new(ListFan {
            state: Mutex::new((disks, Vec::new())),
            reply: Arc::clone(reply),
        });
        let pieces = (0..disks)
            .map(|d| (d, Job::ListPiece { disk: d, fan: Arc::clone(&fan) }))
            .collect();
        self.admit_fanout(pieces, reply);
    }

    fn submit_bulk_create(&self, shards: Vec<(u128, Vec<u8>)>, reply: &Arc<Reply>) {
        if shards.is_empty() {
            reply.set(Response::Ok);
            return;
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<(u128, Vec<u8>)>> =
            std::collections::BTreeMap::new();
        for (shard, data) in shards {
            groups.entry(self.node.route(shard)).or_default().push((shard, data));
        }
        let fan = Arc::new(BulkFan {
            state: Mutex::new((groups.len(), None)),
            reply: Arc::clone(reply),
        });
        let pieces = groups
            .into_iter()
            .map(|(d, shards)| (d, Job::BulkCreatePiece { shards, fan: Arc::clone(&fan) }))
            .collect();
        self.admit_fanout(pieces, reply);
    }

    fn submit_scan(
        &self,
        start: u128,
        end: u128,
        limit: u32,
        continuation: Option<u128>,
        reply: &Arc<Reply>,
    ) {
        let Some(start) = resolve_scan_start(start, end, continuation) else {
            reply.set(Response::ScanPage { entries: Vec::new(), next: None });
            return;
        };
        let disks = self.node.disk_count();
        let fan = Arc::new(ScanFan {
            state: Mutex::new((disks, Vec::new(), None)),
            limit,
            reply: Arc::clone(reply),
        });
        let pieces = (0..disks)
            .map(|d| (d, Job::ScanPiece { disk: d, start, end, limit, fan: Arc::clone(&fan) }))
            .collect();
        self.admit_fanout(pieces, reply);
    }

    fn submit_bulk_remove(&self, shards: Vec<u128>, reply: &Arc<Reply>) {
        if shards.is_empty() {
            reply.set(Response::Ok);
            return;
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<u128>> =
            std::collections::BTreeMap::new();
        for shard in shards {
            groups.entry(self.node.route(shard)).or_default().push(shard);
        }
        let fan = Arc::new(BulkFan {
            state: Mutex::new((groups.len(), None)),
            reply: Arc::clone(reply),
        });
        let pieces = groups
            .into_iter()
            .map(|(d, shards)| (d, Job::BulkRemovePiece { shards, fan: Arc::clone(&fan) }))
            .collect();
        self.admit_fanout(pieces, reply);
    }
}

/// Pops one dispatch round off a non-empty queue: the leading run of
/// consecutive puts (up to the batch window), or a single job. Only the
/// *leading* run, so a get queued after a put is never answered from
/// before it. Shared by the worker loop and manual stepping, so both
/// modes batch identically.
fn pop_round(state: &mut ExecState, config: &EngineConfig) -> (Vec<Job>, Option<Job>) {
    let mut run = Vec::new();
    while run.len() < config.batch_window
        && matches!(
            state.queue.front(),
            Some(Job::Direct { req: Request::Put { .. }, .. })
        )
    {
        run.push(state.queue.pop_front().expect("front checked"));
    }
    let single = if run.is_empty() { state.queue.pop_front() } else { None };
    (run, single)
}

/// Executes one popped round.
fn dispatch_round(exec: &Executor, node: &Node, run: &mut Vec<Job>, single: Option<Job>) {
    if run.len() >= 2 {
        execute_put_run(exec, node, std::mem::take(run));
    } else if let Some(job) = run.pop() {
        execute(exec, node, job);
    } else if let Some(job) = single {
        execute(exec, node, job);
    }
}

fn worker_loop(exec: Arc<Executor>, node: Node, config: EngineConfig) {
    loop {
        let mut state = exec.state.lock();
        state = exec
            .work_cv
            .wait_while(state, |s| (s.queue.is_empty() || s.paused) && !s.closed);
        if state.queue.is_empty() {
            if state.closed {
                return;
            }
            continue;
        }
        let (mut run, single) = pop_round(&mut state, &config);
        exec.set_depth(state.queue.len());
        drop(state);
        dispatch_round(&exec, &node, &mut run, single);
    }
}

/// Funnels a run of co-routed puts into one [`Node::put_batch`]; on a
/// batch-level error, falls back to individual dispatch so every client
/// still gets its own element's accurate outcome.
fn execute_put_run(exec: &Executor, node: &Node, run: Vec<Job>) {
    exec.note_batch(run.len() as u32);
    let mut items = Vec::with_capacity(run.len());
    let mut replies = Vec::with_capacity(run.len());
    for job in &run {
        match job {
            Job::Direct { req: Request::Put { shard, data }, req_id, reply } => {
                items.push((*shard, data.clone()));
                replies.push((Arc::clone(reply), *req_id));
            }
            _ => unreachable!("put run contains only puts"),
        }
    }
    match node.put_batch(&items) {
        Ok(_deps) => {
            // The batch executed as one fused store op, so no single
            // request frame fits; each element's completion is still
            // recorded against its own request id.
            for (reply, req_id) in replies {
                if let (Some(o), Some(r)) = (&exec.obs, req_id) {
                    o.trace()
                        .event_with_req(TraceEvent::ReqDone { req: r, ok: true }, Some(r));
                }
                reply.set(Response::Ok);
            }
        }
        Err(_) => {
            // Per-element fallback: puts are idempotent (later-wins), so
            // re-driving any element that already landed is safe.
            for job in run {
                execute(exec, node, job);
            }
        }
    }
}

fn execute(exec: &Executor, node: &Node, job: Job) {
    match job {
        Job::Direct { req, req_id, reply } => {
            // Execute inside a request frame: every trace event this
            // request causes — in core, dependency, lsm, chunk, vdisk —
            // is stamped with its id, reconstructable via Obs::timeline.
            let frame = match (&exec.obs, req_id) {
                (Some(o), Some(r)) => Some(o.trace().req_frame(r)),
                _ => None,
            };
            let response = rpc::dispatch(node, req);
            if let (Some(o), Some(r)) = (&exec.obs, req_id) {
                let ok = !matches!(response, Response::Error(_));
                o.trace().event(TraceEvent::ReqDone { req: r, ok });
            }
            drop(frame);
            reply.set(response);
        }
        Job::ListPiece { disk, fan } => {
            // Reading the catalog slice *through the executor* means the
            // listing observes every previously admitted same-disk write.
            fan.complete(node.list_disk(disk));
        }
        Job::BulkCreatePiece { shards, fan } => {
            fan.complete(node.bulk_create(&shards).map(|_| ()).map_err(RpcError::from));
        }
        Job::BulkRemovePiece { shards, fan } => {
            fan.complete(node.bulk_remove(&shards).map(|_| ()).map_err(RpcError::from));
        }
        Job::ScanPiece { disk, start, end, limit, fan } => {
            // Scanning *through the executor* means the slice observes
            // every previously admitted same-disk write.
            let result = node.scan_disk(disk, start, end, limit).map_err(RpcError::from);
            if let Ok((entries, _)) = &result {
                exec.note_scan_page(entries.len() as u32);
            }
            fan.complete(result);
        }
    }
}

/// Serves a node with the default engine configuration — the drop-in
/// successor of the old single-threaded `serve` loop.
pub fn serve(node: Node) -> Engine {
    Engine::start(node, EngineConfig::default())
}
