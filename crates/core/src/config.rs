//! Validated configuration builders for stores, nodes, and the request
//! plane.
//!
//! Ad-hoc struct literals made it easy to construct configurations that
//! are silently nonsense (a zero flush threshold, a batch window wider
//! than the admission queue that feeds it). The builders here are the
//! supported construction path: every knob has a sane default, and
//! [`build`](StoreConfigBuilder::build) rejects invalid combinations with
//! a typed [`ConfigError`] instead of letting them wedge a running node.

use std::fmt;
use std::path::PathBuf;

use shardstore_faults::FaultConfig;
use shardstore_vdisk::Geometry;

use crate::store::StoreConfig;

/// Which storage backend a freshly formatted store's disk uses.
///
/// `Memory` is the checking substrate: deterministic, clock-free, and the
/// only backend legal under the model checker (where [`CrashPlan`]
/// enumeration must not depend on the host filesystem). `File` maps
/// extents onto a preallocated volume file so the same stack runs against
/// real storage with `flush_extent` fencing discharged as `fdatasync`.
///
/// [`CrashPlan`]: shardstore_vdisk::CrashPlan
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum BackendKind {
    /// In-memory backend (the default).
    #[default]
    Memory,
    /// File backend: each formatted disk gets its own volume file under
    /// `dir` (created if absent, removed when the disk is dropped).
    File {
        /// Directory that holds the store-managed volume files.
        dir: PathBuf,
        /// Physically write zeros through the data region at format time
        /// so later page writes never ENOSPC mid-flush.
        preallocate: bool,
    },
}

impl BackendKind {
    /// The stable tag this kind formats disks as (`"memory"` / `"file"`).
    pub fn tag(&self) -> &'static str {
        match self {
            BackendKind::Memory => "memory",
            BackendKind::File { .. } => "file",
        }
    }

    /// A file backend rooted in the standard scratch location
    /// (`$TMPDIR/shardstore-volumes`), without preallocation.
    pub fn file_in_temp() -> Self {
        let mut dir = std::env::temp_dir();
        dir.push("shardstore-volumes");
        BackendKind::File { dir, preallocate: false }
    }

    /// Reads the `SHARDSTORE_BACKEND` environment variable so whole test
    /// suites can be pointed at real storage without per-test plumbing:
    /// `memory` (or unset) keeps the default, `file` uses
    /// [`BackendKind::file_in_temp`], and `file:<dir>` roots the volumes
    /// at `<dir>`. Unknown values fall back to `Memory` so a typo cannot
    /// silently flip a determinism-sensitive suite onto the filesystem.
    ///
    /// Inside a model-checked execution the env var is ignored entirely:
    /// suite-wide redirection must not leak real IO into checked
    /// schedules (an *explicitly* configured file backend there is still
    /// rejected by the builder with
    /// [`ConfigError::FileBackendUnderChecker`]).
    pub fn from_env() -> Self {
        if shardstore_conc::is_controlled() {
            return BackendKind::Memory;
        }
        match std::env::var("SHARDSTORE_BACKEND") {
            Ok(v) if v == "file" => Self::file_in_temp(),
            Ok(v) => match v.strip_prefix("file:") {
                Some(dir) if !dir.is_empty() => {
                    BackendKind::File { dir: PathBuf::from(dir), preallocate: false }
                }
                _ => BackendKind::Memory,
            },
            Err(_) => BackendKind::Memory,
        }
    }
}

/// A rejected configuration. Matchable, so tests can assert *which*
/// validation fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A field that must be positive was zero.
    Zero {
        /// The offending field.
        field: &'static str,
    },
    /// The batched-dispatch window is wider than the admission queue that
    /// feeds it — the excess could never fill.
    BatchWindowExceedsQueue {
        /// Configured batch window.
        batch_window: usize,
        /// Configured per-executor queue depth.
        queue_depth: usize,
    },
    /// A file backend was configured inside a model-checked execution.
    /// Checked schedules must stay independent of the host filesystem, so
    /// only the in-memory backend is legal there.
    FileBackendUnderChecker,
    /// A file backend was configured with an empty volume directory.
    EmptyBackendDir,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Zero { field } => write!(f, "config: `{field}` must be positive"),
            ConfigError::BatchWindowExceedsQueue { batch_window, queue_depth } => write!(
                f,
                "config: batch_window ({batch_window}) exceeds queue_depth ({queue_depth})"
            ),
            ConfigError::FileBackendUnderChecker => {
                write!(f, "config: the file backend is not allowed under the model checker")
            }
            ConfigError::EmptyBackendDir => {
                write!(f, "config: file backend volume directory must be non-empty")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl StoreConfig {
    /// Starts a builder seeded with the defaults.
    pub fn builder() -> StoreConfigBuilder {
        StoreConfigBuilder { config: StoreConfig::default() }
    }

    /// Continues a builder from this configuration — the supported way to
    /// derive a variant (e.g. from [`StoreConfig::small`]) without a
    /// struct-update literal.
    pub fn to_builder(self) -> StoreConfigBuilder {
        StoreConfigBuilder { config: self }
    }
}

/// Builder for [`StoreConfig`]; see [`StoreConfig::builder`].
#[derive(Debug, Clone)]
pub struct StoreConfigBuilder {
    config: StoreConfig,
}

impl StoreConfigBuilder {
    /// Maximum chunk payload size; larger shards split across chunks.
    pub fn max_chunk_size(mut self, bytes: usize) -> Self {
        self.config.max_chunk_size = bytes;
        self
    }

    /// Memtable entry count that triggers an automatic index flush.
    pub fn flush_threshold(mut self, entries: usize) -> Self {
        self.config.flush_threshold = entries;
        self
    }

    /// Buffer-cache capacity in bytes (keep small in tests — §8.3).
    pub fn cache_capacity(mut self, bytes: usize) -> Self {
        self.config.cache_capacity = bytes;
        self
    }

    /// Deterministic seed for chunk UUID generation.
    pub fn uuid_seed(mut self, seed: u64) -> Self {
        self.config.uuid_seed = seed;
        self
    }

    /// Build per-table fence/bloom metadata on the index read path.
    pub fn lsm_filters(mut self, on: bool) -> Self {
        self.config.lsm_filters = on;
        self
    }

    /// Decoded-table cache capacity in tables; 0 disables it.
    pub fn decoded_cache_tables(mut self, tables: usize) -> Self {
        self.config.decoded_cache_tables = tables;
        self
    }

    /// Number of hash-sharded memtable segments (point ops lock one
    /// shard; scans and flush take an ordered cut across all of them).
    pub fn memtable_shards(mut self, shards: usize) -> Self {
        self.config.memtable_shards = shards;
        self
    }

    /// Live-table count at which an automatic flush also schedules a
    /// bounded tiered compaction round.
    pub fn compaction_trigger_tables(mut self, tables: usize) -> Self {
        self.config.compaction_trigger_tables = tables;
        self
    }

    /// Max entries per block in format-v2 SSTables.
    pub fn block_size(mut self, entries: usize) -> Self {
        self.config.block_size = entries;
        self
    }

    /// Storage backend for freshly formatted disks.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.config.backend = backend;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<StoreConfig, ConfigError> {
        if self.config.max_chunk_size == 0 {
            return Err(ConfigError::Zero { field: "max_chunk_size" });
        }
        if self.config.flush_threshold == 0 {
            return Err(ConfigError::Zero { field: "flush_threshold" });
        }
        if self.config.memtable_shards == 0 {
            return Err(ConfigError::Zero { field: "memtable_shards" });
        }
        if self.config.compaction_trigger_tables == 0 {
            return Err(ConfigError::Zero { field: "compaction_trigger_tables" });
        }
        if self.config.block_size == 0 {
            return Err(ConfigError::Zero { field: "block_size" });
        }
        if let BackendKind::File { dir, .. } = &self.config.backend {
            if dir.as_os_str().is_empty() {
                return Err(ConfigError::EmptyBackendDir);
            }
            // Crash-state enumeration and schedule exploration must not
            // depend on the host filesystem: a config built inside a
            // checked execution may only use the in-memory backend.
            if shardstore_conc::is_controlled() {
                return Err(ConfigError::FileBackendUnderChecker);
            }
        }
        Ok(self.config)
    }
}

/// Request-plane tuning for the multi-worker RPC engine
/// ([`crate::engine::Engine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Bound on each disk executor's admission queue; a request targeting
    /// a full queue is rejected with a typed `Overloaded` error instead
    /// of queueing unboundedly.
    pub queue_depth: usize,
    /// Maximum number of co-routed puts the executor funnels into one
    /// `Store::put_batch` per dispatch.
    pub batch_window: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self { queue_depth: 64, batch_window: 16 }
    }
}

impl EngineConfig {
    /// Starts a builder seeded with the defaults.
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder { config: EngineConfig::default() }
    }
}

/// Builder for [`EngineConfig`]; see [`EngineConfig::builder`].
#[derive(Debug, Clone)]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Per-executor admission queue bound.
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth;
        self
    }

    /// Batched-dispatch window (max puts per funnelled batch).
    pub fn batch_window(mut self, window: usize) -> Self {
        self.config.batch_window = window;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<EngineConfig, ConfigError> {
        let EngineConfig { queue_depth, batch_window } = self.config;
        if queue_depth == 0 {
            return Err(ConfigError::Zero { field: "queue_depth" });
        }
        if batch_window == 0 {
            return Err(ConfigError::Zero { field: "batch_window" });
        }
        if batch_window > queue_depth {
            return Err(ConfigError::BatchWindowExceedsQueue { batch_window, queue_depth });
        }
        Ok(self.config)
    }
}

/// Node-level configuration: disk fleet shape plus the per-store and
/// request-plane settings.
#[derive(Debug, Clone)]
pub struct NodeConfig {
    /// Number of disk slots (one store and one engine executor each).
    pub disks: usize,
    /// Geometry of each freshly formatted disk.
    pub geometry: Geometry,
    /// Per-store configuration.
    pub store: StoreConfig,
    /// Seeded-bug / fault-injection configuration.
    pub faults: FaultConfig,
    /// Request-plane tuning.
    pub engine: EngineConfig,
}

impl Default for NodeConfig {
    fn default() -> Self {
        Self {
            disks: 1,
            geometry: Geometry::default(),
            store: StoreConfig::default(),
            faults: FaultConfig::none(),
            engine: EngineConfig::default(),
        }
    }
}

impl NodeConfig {
    /// Starts a builder seeded with the defaults (one disk, default
    /// geometry, no faults).
    pub fn builder() -> NodeConfigBuilder {
        NodeConfigBuilder { config: NodeConfig::default() }
    }
}

/// Builder for [`NodeConfig`]; see [`NodeConfig::builder`].
#[derive(Debug, Clone)]
pub struct NodeConfigBuilder {
    config: NodeConfig,
}

impl NodeConfigBuilder {
    /// Number of disk slots. One engine executor (worker) serves each
    /// slot, so this is also the request plane's worker count.
    pub fn disks(mut self, disks: usize) -> Self {
        self.config.disks = disks;
        self
    }

    /// Geometry of each freshly formatted disk.
    pub fn geometry(mut self, geometry: Geometry) -> Self {
        self.config.geometry = geometry;
        self
    }

    /// Per-store configuration.
    pub fn store(mut self, store: StoreConfig) -> Self {
        self.config.store = store;
        self
    }

    /// Seeded-bug / fault-injection configuration.
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.config.faults = faults;
        self
    }

    /// Request-plane tuning.
    pub fn engine(mut self, engine: EngineConfig) -> Self {
        self.config.engine = engine;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<NodeConfig, ConfigError> {
        if self.config.disks == 0 {
            return Err(ConfigError::Zero { field: "disks" });
        }
        // The engine settings ride along; validate them here too so a
        // node built from this config cannot carry an invalid plane.
        let engine = EngineConfigBuilder { config: self.config.engine }.build()?;
        let mut config = self.config;
        config.engine = engine;
        Ok(config)
    }
}
