//! ShardStore: the key-value storage node under validation (§2 of the
//! paper).
//!
//! This crate assembles the substrate crates into the system the paper
//! describes: per-disk stores ([`Store`]) combining an LSM index, chunk
//! store, buffer cache, superblock and soft-updates IO scheduler over an
//! in-memory disk; a multi-disk [`Node`] with request routing and
//! control-plane operations; the [`rpc`] wire interface (versioned
//! frames, typed [`rpc::ErrorCode`] errors); and the parallel request
//! plane ([`engine::Engine`]: per-disk executors, bounded admission,
//! cross-disk fan-out).
//!
//! Configurations are built through validating builders
//! ([`StoreConfig::builder`], [`NodeConfig::builder`]); a node plus its
//! request plane comes up with [`engine::serve`] or
//! [`engine::Engine::start`].

pub mod config;
pub mod engine;
mod node;
pub mod rpc;
mod store;

pub use config::{BackendKind, ConfigError, EngineConfig, NodeConfig};
pub use engine::{serve, Engine, PendingReply, RpcClient};
pub use node::Node;
pub use shardstore_cache::ValueBuf;
pub use store::{Store, StoreConfig, StoreError};

#[cfg(test)]
mod tests {
    use shardstore_faults::{BugId, FaultConfig};
    use shardstore_vdisk::{CrashPlan, Geometry};

    use super::*;

    fn store() -> Store {
        Store::format(Geometry::small(), StoreConfig::small(), FaultConfig::none())
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let s = store();
        s.put(1, b"hello shard").unwrap();
        assert_eq!(s.get(1).unwrap().unwrap(), b"hello shard");
        s.delete(1).unwrap();
        assert_eq!(s.get(1).unwrap(), None);
    }

    #[test]
    fn empty_shard_roundtrips() {
        let s = store();
        s.put(1, b"").unwrap();
        assert_eq!(s.get(1).unwrap().unwrap(), b"");
    }

    #[test]
    fn large_shard_spans_multiple_chunks() {
        let s = store();
        let data: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        s.put(2, &data).unwrap();
        assert_eq!(s.get(2).unwrap().unwrap(), data);
        // Splitting actually happened (max_chunk_size is 96 in the small
        // config).
        let locs = s.index().get(2).unwrap().unwrap();
        assert!(locs.len() > 1, "expected multiple chunks, got {}", locs.len());
    }

    #[test]
    fn put_dependency_becomes_persistent_after_shutdown() {
        let s = store();
        let dep = s.put(3, b"durable").unwrap();
        assert!(!dep.is_persistent());
        s.clean_shutdown().unwrap();
        assert!(dep.is_persistent());
    }

    #[test]
    fn put_batch_matches_sequential_puts() {
        let s = store();
        assert!(s.put_batch(&[]).unwrap().is_empty());
        let batch: Vec<(u128, Vec<u8>)> = vec![
            (1, b"one".to_vec()),
            (2, vec![7u8; 300]),      // multi-chunk element
            (3, Vec::new()),          // empty element
            (2, b"two-v2".to_vec()),  // duplicate key: later wins
        ];
        let deps = s.put_batch(&batch).unwrap();
        assert_eq!(deps.len(), 4);
        assert_eq!(s.get(1).unwrap().unwrap(), b"one");
        assert_eq!(s.get(2).unwrap().unwrap(), b"two-v2");
        assert_eq!(s.get(3).unwrap().unwrap(), b"");
        s.clean_shutdown().unwrap();
        for dep in &deps {
            assert!(dep.is_persistent());
        }
        let s2 = s.dirty_reboot(&CrashPlan::LoseAll).unwrap();
        assert_eq!(s2.get(1).unwrap().unwrap(), b"one");
        assert_eq!(s2.get(2).unwrap().unwrap(), b"two-v2");
        assert_eq!(s2.get(3).unwrap().unwrap(), b"");
    }

    #[test]
    fn put_batch_persists_under_background_writeback() {
        use shardstore_dependency::{WritebackConfig, WritebackMode};
        let s = store();
        let sched = s.scheduler();
        sched.set_writeback_mode(WritebackMode::Background(WritebackConfig::default()));
        let deps = s
            .put_batch(&(0..8u128).map(|k| (k, vec![k as u8; 20])).collect::<Vec<_>>())
            .unwrap();
        s.flush_index().unwrap();
        sched.quiesce().unwrap();
        for dep in &deps {
            assert!(dep.is_persistent());
        }
        for k in 0..8u128 {
            assert_eq!(s.get(k).unwrap().unwrap(), vec![k as u8; 20]);
        }
    }

    #[test]
    fn overwrite_returns_latest() {
        let s = store();
        s.put(4, b"v1").unwrap();
        s.put(4, b"v2").unwrap();
        assert_eq!(s.get(4).unwrap().unwrap(), b"v2");
    }

    #[test]
    fn data_survives_dirty_reboot_when_persisted() {
        let s = store();
        let dep = s.put(5, b"keep me").unwrap();
        s.flush_index().unwrap();
        s.pump().unwrap();
        assert!(dep.is_persistent());
        let s2 = s.dirty_reboot(&CrashPlan::LoseAll).unwrap();
        assert_eq!(s2.get(5).unwrap().unwrap(), b"keep me");
    }

    #[test]
    fn unpersisted_data_may_vanish_after_dirty_reboot() {
        let s = store();
        let dep = s.put(6, b"volatile").unwrap();
        assert!(!dep.is_persistent());
        let s2 = s.dirty_reboot(&CrashPlan::LoseAll).unwrap();
        assert_eq!(s2.get(6).unwrap(), None);
    }

    #[test]
    fn reclaim_after_delete_reclaims_space_without_losing_data() {
        let s = store();
        // Fill past one extent so the garbage lands on a non-open extent
        // (the open extent is never a reclamation victim).
        let payload = |b: u8| vec![b; 80];
        for k in 1..=9u128 {
            s.put(k, &payload(k as u8)).unwrap();
        }
        s.flush_index().unwrap();
        s.pump().unwrap();
        s.delete(2).unwrap();
        s.flush_index().unwrap();
        s.pump().unwrap();
        let reclaimed = s.reclaim(shardstore_chunk::Stream::Data).unwrap();
        assert!(reclaimed, "a victim with garbage should exist");
        s.pump().unwrap();
        for k in (1..=9u128).filter(|k| *k != 2) {
            assert_eq!(s.get(k).unwrap().unwrap(), payload(k as u8), "key {k}");
        }
        assert_eq!(s.get(2).unwrap(), None);
        // And everything still holds after a crash.
        let s2 = s.dirty_reboot(&CrashPlan::LoseAll).unwrap();
        for k in (1..=9u128).filter(|k| *k != 2) {
            assert_eq!(s2.get(k).unwrap().unwrap(), payload(k as u8), "key {k} after reboot");
        }
    }

    #[test]
    fn automatic_flush_at_threshold() {
        let s = store();
        for k in 0..(StoreConfig::small().flush_threshold as u128 + 1) {
            s.put(k, b"x").unwrap();
        }
        assert!(s.index().table_count() >= 1, "threshold flush should have produced a table");
    }

    #[test]
    fn list_reflects_merged_state() {
        let s = store();
        s.put(1, b"a").unwrap();
        s.put(2, b"b").unwrap();
        s.flush_index().unwrap();
        s.delete(1).unwrap();
        assert_eq!(s.list().unwrap(), vec![2]);
    }

    #[test]
    fn node_routes_by_shard() {
        let node = Node::new(3, Geometry::small(), StoreConfig::small(), FaultConfig::none());
        for shard in 0..9u128 {
            node.put(shard, format!("data{shard}").as_bytes()).unwrap();
        }
        for shard in 0..9u128 {
            assert_eq!(node.get(shard).unwrap().unwrap(), format!("data{shard}").as_bytes());
        }
        assert_eq!(node.list(), (0..9u128).collect::<Vec<_>>());
        node.check_catalog_consistent().unwrap();
    }

    #[test]
    fn remove_and_return_disk_preserves_shards() {
        let node = Node::new(2, Geometry::small(), StoreConfig::small(), FaultConfig::none());
        node.put(0, b"even").unwrap();
        node.put(1, b"odd").unwrap();
        node.remove_disk(0).unwrap();
        // Shard 0 routed to disk 0: unavailable while removed.
        assert!(matches!(node.get(0), Err(StoreError::OutOfService)));
        assert_eq!(node.list(), vec![1]);
        // Shard 1 still served.
        assert_eq!(node.get(1).unwrap().unwrap(), b"odd");
        node.return_disk(0).unwrap();
        assert_eq!(node.get(0).unwrap().unwrap(), b"even");
        assert_eq!(node.list(), vec![0, 1]);
        node.check_catalog_consistent().unwrap();
    }

    #[test]
    fn b4_seeded_disk_return_loses_shards() {
        let node = Node::new(
            2,
            Geometry::small(),
            StoreConfig::small(),
            FaultConfig::seed(BugId::B4DiskRemovalLosesShards),
        );
        node.put(0, b"precious").unwrap();
        node.remove_disk(0).unwrap();
        node.return_disk(0).unwrap();
        assert_eq!(node.get(0).unwrap(), None, "the buggy return formats the disk");
    }

    #[test]
    fn bulk_ops_roundtrip() {
        let node = Node::new(2, Geometry::small(), StoreConfig::small(), FaultConfig::none());
        let shards: Vec<(u128, Vec<u8>)> =
            (0..6u128).map(|s| (s, vec![s as u8; 10])).collect();
        node.bulk_create(&shards).unwrap();
        node.check_catalog_consistent().unwrap();
        assert_eq!(node.list().len(), 6);
        node.bulk_remove(&[0, 2, 4]).unwrap();
        node.check_catalog_consistent().unwrap();
        assert_eq!(node.list(), vec![1, 3, 5]);
    }

    #[test]
    fn list_verified_returns_sizes() {
        let node = Node::new(2, Geometry::small(), StoreConfig::small(), FaultConfig::none());
        node.put(1, b"four").unwrap();
        node.put(2, b"sevenish").unwrap();
        let listed = node.list_verified().unwrap();
        assert_eq!(listed, vec![(1, 4), (2, 8)]);
    }

    #[test]
    fn store_survives_many_reboot_cycles() {
        let mut s = store();
        for round in 0..5u128 {
            s.put(round, format!("round{round}").as_bytes()).unwrap();
            s.clean_shutdown().unwrap();
            s = s.dirty_reboot(&CrashPlan::LoseAll).unwrap();
            for k in 0..=round {
                assert_eq!(
                    s.get(k).unwrap().unwrap(),
                    format!("round{k}").as_bytes(),
                    "round {round} key {k}"
                );
            }
        }
    }
}

#[cfg(test)]
mod quarantine_tests {
    use shardstore_faults::FaultConfig;
    use shardstore_vdisk::Geometry;

    use super::*;

    fn store() -> Store {
        Store::format(Geometry::small(), StoreConfig::small(), FaultConfig::none())
    }

    #[test]
    fn permanent_read_fault_quarantines_and_rescues_cached_chunks() {
        let s = store();
        s.put(1, b"cached survivor").unwrap();
        s.put(2, b"stranded victim").unwrap();
        s.pump().unwrap();
        let ext_a = s.index().get(1).unwrap().unwrap()[0].extent;
        let ext_b = s.index().get(2).unwrap().unwrap()[0].extent;
        assert_eq!(ext_a, ext_b, "both small chunks share the open extent");
        // Read key 1 so its payload is resident in the buffer cache.
        assert_eq!(s.get(1).unwrap().unwrap(), b"cached survivor");
        // The extent dies permanently.
        s.scheduler().disk().inject_fail_always(ext_a);
        // Key 2 was never cached: its first post-fault read discovers the
        // fault, quarantines the extent, and reports *degraded* — not
        // NotFound, and never wrong bytes.
        let err = s.get(2).unwrap_err();
        assert!(err.is_degraded(), "got {err}");
        assert_eq!(s.quarantined_extents(), vec![ext_a]);
        // Key 1's cache copy was evacuated to a fresh extent and its
        // index pointer rewired; it reads back fine.
        assert_eq!(s.get(1).unwrap().unwrap(), b"cached survivor");
        assert_ne!(s.index().get(1).unwrap().unwrap()[0].extent, ext_a);
        // And the rescue is durable across a reboot (the dead extent
        // stays dead — fail_always survives crashes).
        s.flush_index().unwrap();
        s.pump().unwrap();
        let s2 = s.dirty_reboot(&shardstore_vdisk::CrashPlan::LoseAll).unwrap();
        assert_eq!(s2.get(1).unwrap().unwrap(), b"cached survivor");
    }

    #[test]
    fn writes_reroute_after_open_extent_death() {
        let s = store();
        s.put(1, b"first").unwrap();
        s.pump().unwrap();
        let open = s.index().get(1).unwrap().unwrap()[0].extent;
        s.scheduler().disk().inject_fail_always(open);
        // This put targets the dead open extent; its data write fails
        // permanently during the pump, which quarantines the extent. The
        // put is never acknowledged — but the store must not wedge.
        let doomed = s.put(2, b"lost to the fault").unwrap();
        s.pump().unwrap();
        assert!(!doomed.is_persistent(), "a write lost to a dead extent must not ack");
        assert!(s.quarantined_extents().contains(&open));
        // New writes re-route to healthy extents and become durable,
        // including the index flush (whose doomed entry is skipped).
        let dep = s.put(3, b"rerouted").unwrap();
        s.flush_index().unwrap();
        s.pump().unwrap();
        assert!(dep.is_persistent());
        assert_eq!(s.get(3).unwrap().unwrap(), b"rerouted");
    }
}

#[cfg(test)]
mod migration_tests {
    use shardstore_faults::FaultConfig;
    use shardstore_vdisk::Geometry;

    use super::*;

    fn node() -> Node {
        Node::new(3, Geometry::small(), StoreConfig::small(), FaultConfig::none())
    }

    #[test]
    fn migrate_moves_data_and_updates_placement() {
        let n = node();
        n.put(1, b"movable").unwrap();
        assert_eq!(n.route(1), 1);
        n.migrate(1, 2).unwrap();
        assert_eq!(n.route(1), 2);
        assert_eq!(n.get(1).unwrap().unwrap(), b"movable");
        // The source copy is gone.
        assert_eq!(n.store(1).unwrap().get(1).unwrap(), None);
        assert_eq!(n.store(2).unwrap().get(1).unwrap().unwrap(), b"movable");
        n.check_catalog_consistent().unwrap();
    }

    #[test]
    fn migrate_back_home_clears_override() {
        let n = node();
        n.put(1, b"roundtrip").unwrap();
        n.migrate(1, 0).unwrap();
        assert_eq!(n.placements(), vec![(1, 0)]);
        n.migrate(1, 1).unwrap();
        assert_eq!(n.placements(), vec![], "home placement needs no override");
        assert_eq!(n.get(1).unwrap().unwrap(), b"roundtrip");
    }

    #[test]
    fn migrate_missing_shard_is_a_noop() {
        let n = node();
        n.migrate(42, 0).unwrap();
        assert_eq!(n.get(42).unwrap(), None);
        n.check_catalog_consistent().unwrap();
    }

    #[test]
    fn migrate_to_same_disk_is_a_noop() {
        let n = node();
        n.put(1, b"stay").unwrap();
        n.migrate(1, 1).unwrap();
        assert_eq!(n.get(1).unwrap().unwrap(), b"stay");
    }

    #[test]
    fn migrate_to_removed_disk_fails_cleanly() {
        let n = node();
        n.put(1, b"stuck").unwrap();
        n.remove_disk(2).unwrap();
        assert!(matches!(n.migrate(1, 2), Err(StoreError::OutOfService)));
        assert_eq!(n.get(1).unwrap().unwrap(), b"stuck");
    }

    #[test]
    fn migrated_shard_survives_target_disk_cycle() {
        let n = node();
        n.put(1, b"resilient").unwrap();
        n.migrate(1, 2).unwrap();
        n.store(2).unwrap().clean_shutdown().unwrap();
        n.remove_disk(2).unwrap();
        n.return_disk(2).unwrap();
        assert_eq!(n.get(1).unwrap().unwrap(), b"resilient");
    }

    #[test]
    fn delete_then_migrate_clears_stale_override() {
        let n = node();
        n.put(1, b"gone soon").unwrap();
        n.migrate(1, 0).unwrap();
        n.delete(1).unwrap();
        n.migrate(1, 1).unwrap();
        assert_eq!(n.get(1).unwrap(), None);
        n.check_catalog_consistent().unwrap();
    }
}
