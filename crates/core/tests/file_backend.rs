//! File-backend integration: booting the full stack on a real volume
//! file, killing and reopening it mid-flight, and property-testing
//! recovery over corrupted tail bytes.
//!
//! The paper's production claim — the code validated in-memory is the
//! code that runs against real storage — is only credible if recovery
//! treats real bytes as untrusted. These tests corrupt the volume file
//! *underneath* the stack (truncation, torn zeroed tails, bit flips) and
//! assert the CRC-guarded recovery path either rejects the damage with a
//! typed error or returns exactly the acked values: corruption is never
//! laundered into wrong data.

use std::fs;
use std::os::unix::fs::FileExt;
use std::path::PathBuf;

use proptest::prelude::*;
use shardstore_core::config::BackendKind;
use shardstore_core::rpc::{self, Request, Response};
use shardstore_core::{Node, Store, StoreConfig};
use shardstore_dependency::IoScheduler;
use shardstore_faults::FaultConfig;
use shardstore_obs::json::Json;
use shardstore_vdisk::{Disk, Geometry};

fn unique_path(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "shardstore-file-backend-{}-{tag}-{}.ssvol",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    p
}

fn file_config() -> StoreConfig {
    let mut dir = std::env::temp_dir();
    dir.push("shardstore-file-backend-tests");
    StoreConfig::small()
        .to_builder()
        .backend(BackendKind::File { dir, preallocate: true })
        .build()
        .unwrap()
}

/// A node boots on real storage end to end: store-managed volume files,
/// request-plane puts/gets, and a version-2 introspect report that shows
/// the file backend actually fsyncing.
#[test]
fn node_boots_on_file_backend_end_to_end() {
    let node = Node::new(2, Geometry::small(), file_config(), FaultConfig::none());
    for shard in 0..8u128 {
        node.put(shard, format!("value-{shard}").as_bytes()).unwrap();
    }
    node.pump_all().unwrap();
    for shard in 0..8u128 {
        assert_eq!(node.get(shard).unwrap().unwrap(), format!("value-{shard}").as_bytes());
    }
    let json = match rpc::dispatch(&node, Request::Introspect) {
        Response::Introspect { json } => json,
        other => panic!("unexpected: {other:?}"),
    };
    let report = shardstore_obs::json::parse(&json).unwrap();
    let obj = report.as_object().unwrap();
    assert_eq!(obj.get("version").and_then(Json::as_u64), Some(rpc::INTROSPECT_VERSION));
    for disk in obj.get("disks").and_then(Json::as_array).unwrap() {
        let d = disk.as_object().unwrap();
        assert_eq!(d.get("backend").and_then(Json::as_str), Some("file"));
        assert!(d.get("fsyncs").and_then(Json::as_u64).unwrap() > 0, "real fences issued");
        assert!(d.get("bytes_synced").and_then(Json::as_u64).unwrap() > 0);
    }
}

/// Kill-and-reopen mid `put_batch`: acked-durable keys must survive the
/// reopened volume byte-for-byte; the in-flight batch (whose IO was still
/// queued, never fenced) must not surface as invented data.
#[test]
fn crash_restart_reopens_volume_mid_append_batch() {
    let path = unique_path("kill");
    let geometry = Geometry::small();
    let config = StoreConfig::small();
    let acked: Vec<(u128, Vec<u8>)> =
        (0..6u128).map(|k| (k, format!("durable-{k}").into_bytes())).collect();
    {
        // Named volume that outlives the store: unlink_on_drop=false.
        let disk = Disk::create_file(&path, geometry, false, false).unwrap();
        let sched = IoScheduler::new(disk);
        let store = Store::format_on(sched, config.clone(), FaultConfig::none());
        let deps = store.put_batch(&acked).unwrap();
        store.flush_index().unwrap();
        store.pump().unwrap();
        for dep in &deps {
            assert!(dep.is_persistent(), "pumped batch is acked durable");
        }
        // A second batch goes down but the process "dies" before any
        // pump/fence: its writes sit in the scheduler queue and the
        // disk's volatile cache, and the drop below models the kill (the
        // volume file keeps only what was fsynced).
        let doomed: Vec<(u128, Vec<u8>)> =
            (100..106u128).map(|k| (k, format!("in-flight-{k}").into_bytes())).collect();
        store.put_batch(&doomed).unwrap();
    }
    // Reopen the same file and recover.
    let disk = Disk::open_file(&path, false).unwrap();
    assert_eq!(disk.geometry(), geometry, "geometry comes from the volume header");
    let sched = IoScheduler::new(disk);
    let store = Store::recover(sched.clone(), config, FaultConfig::none()).unwrap();
    for (k, v) in &acked {
        assert_eq!(store.get(*k).unwrap().as_deref(), Some(v.as_slice()), "acked key {k}");
    }
    for k in 100..106u128 {
        assert_eq!(store.get(k).unwrap(), None, "unfenced in-flight key {k} must not appear");
    }
    assert!(sched.disk().stats().recovery_scan_ms < u64::MAX, "recovery scan was timed");
    fs::remove_file(&path).unwrap();
}

/// Writes a known key set through a file-backed store and cleanly shuts
/// down, returning the volume path and the expected contents.
fn seeded_volume(tag: &str, keys: u32) -> (PathBuf, Vec<(u128, Vec<u8>)>) {
    let path = unique_path(tag);
    let geometry = Geometry::small();
    let disk = Disk::create_file(&path, geometry, false, false).unwrap();
    let sched = IoScheduler::new(disk);
    let store = Store::format_on(sched, StoreConfig::small(), FaultConfig::none());
    let mut expect = Vec::new();
    for k in 0..keys {
        let value = vec![k as u8 ^ 0x5A; 48 + (k as usize % 32)];
        store.put(k as u128, &value).unwrap();
        expect.push((k as u128, value));
    }
    store.clean_shutdown().unwrap();
    (path, expect)
}

/// Reopens a (possibly corrupted) volume and classifies the outcome:
/// every step may fail with a typed error, but any value that *is*
/// returned must be exactly what was acked.
fn check_no_invented_reads(path: &PathBuf, expect: &[(u128, Vec<u8>)]) {
    let disk = match Disk::open_file(path, false) {
        Ok(d) => d,
        // Header or size validation rejected the volume: a typed error,
        // exactly what a torn header must produce.
        Err(shardstore_vdisk::IoError::Backend { .. }) => return,
        Err(e) => panic!("unexpected open error: {e}"),
    };
    let sched = IoScheduler::new(disk);
    let store = match Store::recover(sched, StoreConfig::small(), FaultConfig::none()) {
        Ok(s) => s,
        // CRC-guarded recovery refused the scan — honest rejection.
        Err(_) => return,
    };
    for (k, v) in expect {
        match store.get(*k) {
            // The only legal success with a value is the exact acked bytes.
            Ok(Some(got)) => assert_eq!(&got, v, "key {k} must read back exactly as acked"),
            // Degraded/corrupt reads surface as errors, never wrong data.
            Err(_) => {}
            // Absence is the torn-tail discipline at work: a CRC-invalid
            // record (flipped superblock slot, corrupted meta/LSM record)
            // is indistinguishable from a torn write, so recovery adopts
            // the newest fully valid prefix — keys may roll back, but no
            // read ever returns bytes that were never written.
            Ok(None) => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Truncating any suffix of the volume file either fails validation
    /// outright or recovers without inventing data.
    #[test]
    fn recovery_survives_truncated_tail(cut in 1usize..4096) {
        let (path, expect) = seeded_volume("trunc", 12);
        let len = fs::metadata(&path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len.saturating_sub(cut as u64)).unwrap();
        drop(f);
        check_no_invented_reads(&path, &expect);
        fs::remove_file(&path).unwrap();
    }

    /// Zeroing a torn tail window (as an interrupted writeback would
    /// leave it) never surfaces as wrong data.
    #[test]
    fn recovery_survives_torn_zeroed_tail(window in 1usize..2048, back in 0usize..4096) {
        let (path, expect) = seeded_volume("torn", 12);
        let len = fs::metadata(&path).unwrap().len() as usize;
        let start = len.saturating_sub(back + window);
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.write_all_at(&vec![0u8; window], start as u64).unwrap();
        drop(f);
        check_no_invented_reads(&path, &expect);
        fs::remove_file(&path).unwrap();
    }

    /// Any single flipped bit anywhere in the volume — header included —
    /// is detected (typed error), rolled back (key absent), or harmless
    /// (byte was dead space); it never surfaces as wrong bytes.
    #[test]
    fn recovery_survives_bit_flips(offset_seed in 0u64..u64::MAX, bit in 0u8..8) {
        let (path, expect) = seeded_volume("flip", 12);
        let len = fs::metadata(&path).unwrap().len();
        let offset = offset_seed % len;
        let f = fs::OpenOptions::new().read(true).write(true).open(&path).unwrap();
        let mut byte = [0u8; 1];
        f.read_exact_at(&mut byte, offset).unwrap();
        byte[0] ^= 1 << bit;
        f.write_all_at(&byte, offset).unwrap();
        drop(f);
        check_no_invented_reads(&path, &expect);
        fs::remove_file(&path).unwrap();
    }
}
