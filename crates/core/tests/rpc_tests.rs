//! RPC layer tests: versioned wire-codec round trips, version
//! negotiation, panic-freedom on arbitrary bytes (§7 — request parsing
//! is untrusted-input handling), typed error codes, and the engine-backed
//! server.

use proptest::prelude::*;
use shardstore_core::rpc::{
    dispatch, ErrorCode, Request, Response, RpcError, WireError, WIRE_MAGIC, WIRE_VERSION,
};
use shardstore_core::{serve, Node, StoreConfig, StoreError};
use shardstore_faults::FaultConfig;
use shardstore_vdisk::Geometry;

fn node() -> Node {
    Node::new(2, Geometry::small(), StoreConfig::small(), FaultConfig::none())
}

#[test]
fn dispatch_roundtrip() {
    let n = node();
    assert_eq!(dispatch(&n, Request::Put { shard: 7, data: b"hello".to_vec() }), Response::Ok);
    assert_eq!(dispatch(&n, Request::Get { shard: 7 }), Response::Data(b"hello".to_vec().into()));
    assert_eq!(dispatch(&n, Request::List), Response::Shards(vec![7]));
    assert_eq!(dispatch(&n, Request::Delete { shard: 7 }), Response::Ok);
    assert_eq!(dispatch(&n, Request::Get { shard: 7 }), Response::NotFound);
}

#[test]
fn dispatch_scan() {
    let n = node();
    for k in [2u128, 5, 9] {
        dispatch(&n, Request::Put { shard: k, data: format!("s-{k}").into_bytes() });
    }
    match dispatch(&n, Request::Scan { start: 0, end: u128::MAX, limit: 0, continuation: None }) {
        Response::ScanPage { entries, next } => {
            let keys: Vec<u128> = entries.iter().map(|(k, _)| *k).collect();
            assert_eq!(keys, vec![2, 5, 9]);
            for (k, v) in &entries {
                assert!(*v == format!("s-{k}").into_bytes());
            }
            assert_eq!(next, None);
        }
        other => panic!("unexpected: {other:?}"),
    }
    // A limited scan returns a continuation that resumes after the last key.
    match dispatch(&n, Request::Scan { start: 0, end: u128::MAX, limit: 2, continuation: None }) {
        Response::ScanPage { entries, next } => {
            assert_eq!(entries.len(), 2);
            assert_eq!(next, Some(5));
        }
        other => panic!("unexpected: {other:?}"),
    }
    match dispatch(&n, Request::Scan { start: 0, end: u128::MAX, limit: 2, continuation: Some(5) })
    {
        Response::ScanPage { entries, next } => {
            assert_eq!(entries.iter().map(|(k, _)| *k).collect::<Vec<_>>(), vec![9]);
            assert_eq!(next, None);
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn dispatch_migrate() {
    let n = node();
    dispatch(&n, Request::Put { shard: 1, data: b"move me".to_vec() });
    assert_eq!(dispatch(&n, Request::Migrate { shard: 1, to_disk: 0 }), Response::Ok);
    assert_eq!(dispatch(&n, Request::Get { shard: 1 }), Response::Data(b"move me".to_vec().into()));
    match dispatch(&n, Request::Migrate { shard: 1, to_disk: 99 }) {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::NoSuchDisk),
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn dispatch_disk_control_plane() {
    let n = node();
    dispatch(&n, Request::Put { shard: 0, data: b"even".to_vec() });
    assert_eq!(dispatch(&n, Request::RemoveDisk { disk: 0 }), Response::Ok);
    match dispatch(&n, Request::Get { shard: 0 }) {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::OutOfService),
        other => panic!("unexpected: {other:?}"),
    }
    assert_eq!(dispatch(&n, Request::ReturnDisk { disk: 0 }), Response::Ok);
    assert_eq!(dispatch(&n, Request::Get { shard: 0 }), Response::Data(b"even".to_vec().into()));
    match dispatch(&n, Request::RemoveDisk { disk: 9 }) {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::NoSuchDisk),
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn dispatch_bulk_ops() {
    let n = node();
    let shards: Vec<(u128, Vec<u8>)> = (0..6u128).map(|s| (s, vec![s as u8; 8])).collect();
    assert_eq!(dispatch(&n, Request::BulkCreate { shards }), Response::Ok);
    assert_eq!(dispatch(&n, Request::List), Response::Shards((0..6u128).collect()));
    assert_eq!(dispatch(&n, Request::BulkRemove { shards: vec![0, 2, 4] }), Response::Ok);
    assert_eq!(dispatch(&n, Request::List), Response::Shards(vec![1, 3, 5]));
    n.check_catalog_consistent().unwrap();
}

#[test]
fn engine_server_handles_wire_requests() {
    let engine = serve(node());
    let client = engine.client();
    let put = Request::Put { shard: 3, data: b"x".to_vec() }.encode();
    assert_eq!(Response::decode(&client.call_wire(&put)).unwrap(), Response::Ok);
    let get = Request::Get { shard: 3 }.encode();
    assert_eq!(
        Response::decode(&client.call_wire(&get)).unwrap(),
        Response::Data(b"x".to_vec().into())
    );
    let miss = Request::Get { shard: 4 }.encode();
    assert_eq!(Response::decode(&client.call_wire(&miss)).unwrap(), Response::NotFound);
    engine.shutdown();
}

#[test]
fn introspect_reports_node_health_as_json() {
    let n = node();
    dispatch(&n, Request::Put { shard: 1, data: b"x".to_vec() });
    let json = match dispatch(&n, Request::Introspect) {
        Response::Introspect { json } => json,
        other => panic!("unexpected: {other:?}"),
    };
    let report = shardstore_obs::json::parse(&json).expect("introspect JSON parses");
    // The report renders back byte-identically: the health JSON is
    // canonical under this crate's own parser/writer pair.
    assert_eq!(report.render(), json);
    let obj = report.as_object().unwrap();
    assert_eq!(
        obj.get("version").and_then(shardstore_obs::json::Json::as_u64),
        Some(shardstore_core::rpc::INTROSPECT_VERSION)
    );
    let disks = obj.get("disks").and_then(shardstore_obs::json::Json::as_array).unwrap();
    assert_eq!(disks.len(), 2);
    for disk in disks {
        let d = disk.as_object().unwrap();
        assert!(d.get("in_service").is_some());
        assert!(d.get("quarantined_extents").is_some());
        // Version-2 additions: backend kind plus the file-backend sync
        // counters (zero on the in-memory backend, but always present).
        let backend = d.get("backend").and_then(shardstore_obs::json::Json::as_str).unwrap();
        assert!(backend == "memory" || backend == "file", "backend tag: {backend}");
        assert!(d.get("fsyncs").and_then(shardstore_obs::json::Json::as_u64).is_some());
        assert!(d.get("bytes_synced").and_then(shardstore_obs::json::Json::as_u64).is_some());
        assert!(d.get("recovery_scan_ms").and_then(shardstore_obs::json::Json::as_u64).is_some());
        // The embedded metrics snapshot round-trips through its own codec.
        let metrics = d.get("metrics").expect("per-disk metrics").render();
        shardstore_obs::metrics::MetricsSnapshot::from_json(&metrics)
            .expect("metrics snapshot round-trips");
    }
}

/// A version-1 reader — one that only knows the v1 field set and ignores
/// anything extra — must keep working against a version-2 report: the
/// bump is purely additive.
#[test]
fn introspect_v2_report_satisfies_v1_readers() {
    let n = node();
    dispatch(&n, Request::Put { shard: 7, data: b"y".to_vec() });
    let json = match dispatch(&n, Request::Introspect) {
        Response::Introspect { json } => json,
        other => panic!("unexpected: {other:?}"),
    };
    let report = shardstore_obs::json::parse(&json).expect("introspect JSON parses");
    let obj = report.as_object().unwrap();
    // A v1 reader checks the version is at least what it knows, then
    // reads exactly the v1 fields.
    let version = obj.get("version").and_then(shardstore_obs::json::Json::as_u64).unwrap();
    assert!(version >= 1);
    for disk in obj.get("disks").and_then(shardstore_obs::json::Json::as_array).unwrap() {
        let d = disk.as_object().unwrap();
        for field in
            ["disk", "in_service", "queue_depth", "quarantined_extents", "compaction_debt"]
        {
            assert!(d.get(field).is_some(), "v1 field `{field}` missing from v2 report");
        }
    }
}

#[test]
fn introspect_travels_the_wire() {
    let engine = serve(node());
    let client = engine.client();
    let frame = Request::Introspect.encode();
    let json = match Response::decode(&client.call_wire(&frame)).unwrap() {
        Response::Introspect { json } => json,
        other => panic!("unexpected: {other:?}"),
    };
    let report = shardstore_obs::json::parse(&json).expect("introspect JSON parses");
    assert_eq!(report.render(), json);
    engine.shutdown();
}

#[test]
fn frames_carry_magic_and_version() {
    let frame = Request::List.encode();
    assert_eq!(&frame[..2], &WIRE_MAGIC);
    assert_eq!(frame[2], WIRE_VERSION);
    let frame = Response::Ok.encode();
    assert_eq!(&frame[..2], &WIRE_MAGIC);
    assert_eq!(frame[2], WIRE_VERSION);
}

#[test]
fn version_mismatch_is_distinguished_from_corruption() {
    let mut frame = Request::Get { shard: 9 }.encode();
    frame[2] = WIRE_VERSION + 1;
    assert_eq!(
        Request::decode(&frame),
        Err(WireError::UnsupportedVersion { got: WIRE_VERSION + 1 })
    );
    // Bad magic is corruption, not a version problem.
    let mut frame = Request::Get { shard: 9 }.encode();
    frame[0] ^= 0xFF;
    assert!(matches!(Request::decode(&frame), Err(WireError::Codec(_))));
}

#[test]
fn engine_answers_version_mismatch_with_unsupported() {
    let engine = serve(node());
    let client = engine.client();
    let mut frame = Request::List.encode();
    frame[2] = 0x7F;
    match Response::decode(&client.call_wire(&frame)).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Unsupported),
        other => panic!("unexpected: {other:?}"),
    }
    // Garbage that is not even a frame answers Malformed.
    match Response::decode(&client.call_wire(b"junk")).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Malformed),
        other => panic!("unexpected: {other:?}"),
    }
    engine.shutdown();
}

#[test]
fn decode_rejects_trailing_garbage() {
    let mut bytes = Request::List.encode();
    bytes.push(0);
    assert!(Request::decode(&bytes).is_err());
}

#[test]
fn decode_rejects_unknown_tags() {
    assert!(Request::decode(&[99]).is_err());
    assert!(Response::decode(&[77]).is_err());
}

#[test]
fn error_code_wire_bytes_are_stable() {
    for code in ErrorCode::ALL {
        assert_eq!(ErrorCode::from_u8(code.as_u8()), Some(code));
    }
    assert_eq!(ErrorCode::from_u8(0xFE), None);
}

#[test]
fn store_errors_map_to_typed_codes() {
    // The conversions are total: every layer error lands on a code, and
    // the degraded/quarantine cases stay distinguishable.
    let quarantined = StoreError::Extent(shardstore_superblock::ExtentError::Quarantined {
        extent: shardstore_vdisk::ExtentId(3),
    });
    assert_eq!(RpcError::from(&quarantined).code, ErrorCode::Degraded);
    assert_eq!(RpcError::from(&StoreError::OutOfService).code, ErrorCode::OutOfService);
    let no_free = StoreError::Extent(shardstore_superblock::ExtentError::NoFreeExtent);
    assert_eq!(RpcError::from(&no_free).code, ErrorCode::ExtentState);
}

fn arb_request() -> impl Strategy<Value = Request> {
    let data = proptest::collection::vec(any::<u8>(), 0..120);
    let bulk = proptest::collection::vec((any::<u128>(), data.clone()), 0..8);
    let removes = proptest::collection::vec(any::<u128>(), 0..12);
    prop_oneof![
        (any::<u128>(), data).prop_map(|(shard, data)| Request::Put { shard, data }),
        any::<u128>().prop_map(|shard| Request::Get { shard }),
        any::<u128>().prop_map(|shard| Request::Delete { shard }),
        Just(Request::List),
        Just(Request::Introspect),
        any::<u32>().prop_map(|disk| Request::RemoveDisk { disk }),
        any::<u32>().prop_map(|disk| Request::ReturnDisk { disk }),
        (any::<u128>(), any::<u32>())
            .prop_map(|(shard, to_disk)| Request::Migrate { shard, to_disk }),
        bulk.prop_map(|shards| Request::BulkCreate { shards }),
        removes.prop_map(|shards| Request::BulkRemove { shards }),
        (any::<u128>(), any::<u128>(), any::<u32>(), prop_oneof![Just(None), any::<u128>().prop_map(Some)])
            .prop_map(|(start, end, limit, continuation)| Request::Scan {
                start,
                end,
                limit,
                continuation,
            }),
    ]
}

fn arb_error_code() -> impl Strategy<Value = ErrorCode> {
    any::<u8>().prop_map(|b| ErrorCode::ALL[b as usize % ErrorCode::ALL.len()])
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        Just(Response::Ok),
        proptest::collection::vec(any::<u8>(), 0..120).prop_map(|v| Response::Data(v.into())),
        Just(Response::NotFound),
        proptest::collection::vec(any::<u128>(), 0..20).prop_map(Response::Shards),
        (arb_error_code(), "[a-zA-Z0-9 :_-]{0,60}")
            .prop_map(|(code, detail)| Response::Error(RpcError { code, detail })),
        "[a-zA-Z0-9 {}\\[\\]:,_.-]{0,80}".prop_map(|json| Response::Introspect { json }),
        (
            proptest::collection::vec(
                (any::<u128>(), proptest::collection::vec(any::<u8>(), 0..40)),
                0..8,
            ),
            prop_oneof![Just(None), any::<u128>().prop_map(Some)],
        )
            .prop_map(|(entries, next)| Response::ScanPage {
                entries: entries.into_iter().map(|(k, v)| (k, v.into())).collect(),
                next,
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary requests round-trip through the versioned wire format.
    #[test]
    fn request_roundtrip(req in arb_request()) {
        prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    /// Arbitrary responses round-trip through the versioned wire format.
    #[test]
    fn response_roundtrip(resp in arb_response()) {
        prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
    }

    /// Arbitrary bytes never panic the decoders (§7).
    #[test]
    fn decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Any single corrupted byte in a valid frame either still decodes or
    /// fails cleanly — and flipping the version byte specifically reports
    /// a version problem, never garbage.
    #[test]
    fn corrupted_frames_fail_cleanly(req in arb_request(), pos in any::<usize>(), flip in 1..=255u8) {
        let mut bytes = req.encode();
        let pos = pos % bytes.len();
        bytes[pos] ^= flip;
        match Request::decode(&bytes) {
            Ok(_) => {}
            Err(WireError::UnsupportedVersion { got }) => {
                prop_assert_eq!(pos, 2);
                prop_assert_eq!(got, WIRE_VERSION ^ flip);
            }
            Err(WireError::Codec(_)) => {}
        }
    }

    /// A malformed wire request gets an error response, not a dead server.
    #[test]
    fn dispatching_decoded_garbage_is_safe(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
        if let Ok(req) = Request::decode(&bytes) {
            let n = node();
            let _ = dispatch(&n, req);
        }
    }
}
