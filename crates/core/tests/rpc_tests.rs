//! RPC layer tests: wire-codec round trips, panic-freedom on arbitrary
//! bytes (§7 — request parsing is untrusted-input handling), and the
//! in-process server loop.

use proptest::prelude::*;
use shardstore_core::rpc::{dispatch, serve, Request, Response};
use shardstore_core::{Node, StoreConfig};
use shardstore_faults::FaultConfig;
use shardstore_vdisk::Geometry;

fn node() -> Node {
    Node::new(2, Geometry::small(), StoreConfig::small(), FaultConfig::none())
}

#[test]
fn dispatch_roundtrip() {
    let n = node();
    assert_eq!(dispatch(&n, Request::Put { shard: 7, data: b"hello".to_vec() }), Response::Ok);
    assert_eq!(dispatch(&n, Request::Get { shard: 7 }), Response::Data(b"hello".to_vec()));
    assert_eq!(dispatch(&n, Request::List), Response::Shards(vec![7]));
    assert_eq!(dispatch(&n, Request::Delete { shard: 7 }), Response::Ok);
    assert_eq!(dispatch(&n, Request::Get { shard: 7 }), Response::NotFound);
}

#[test]
fn dispatch_migrate() {
    let n = node();
    dispatch(&n, Request::Put { shard: 1, data: b"move me".to_vec() });
    assert_eq!(dispatch(&n, Request::Migrate { shard: 1, to_disk: 0 }), Response::Ok);
    assert_eq!(dispatch(&n, Request::Get { shard: 1 }), Response::Data(b"move me".to_vec()));
    assert!(matches!(
        dispatch(&n, Request::Migrate { shard: 1, to_disk: 99 }),
        Response::Error(_)
    ));
}

#[test]
fn dispatch_disk_control_plane() {
    let n = node();
    dispatch(&n, Request::Put { shard: 0, data: b"even".to_vec() });
    assert_eq!(dispatch(&n, Request::RemoveDisk { disk: 0 }), Response::Ok);
    assert!(matches!(dispatch(&n, Request::Get { shard: 0 }), Response::Error(_)));
    assert_eq!(dispatch(&n, Request::ReturnDisk { disk: 0 }), Response::Ok);
    assert_eq!(dispatch(&n, Request::Get { shard: 0 }), Response::Data(b"even".to_vec()));
    assert!(matches!(dispatch(&n, Request::RemoveDisk { disk: 9 }), Response::Error(_)));
}

#[test]
fn server_loop_handles_wire_requests() {
    let (client, handle) = serve(node());
    assert_eq!(client.call(&Request::Put { shard: 3, data: b"x".to_vec() }), Response::Ok);
    assert_eq!(client.call(&Request::Get { shard: 3 }), Response::Data(b"x".to_vec()));
    assert_eq!(client.call(&Request::Get { shard: 4 }), Response::NotFound);
    drop(client);
    handle.join().unwrap();
}

#[test]
fn decode_rejects_trailing_garbage() {
    let mut bytes = Request::List.encode();
    bytes.push(0);
    assert!(Request::decode(&bytes).is_err());
}

#[test]
fn decode_rejects_unknown_tags() {
    assert!(Request::decode(&[99]).is_err());
    assert!(Response::decode(&[77]).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Requests round-trip through the wire format.
    #[test]
    fn request_roundtrip(shard in any::<u128>(), data in proptest::collection::vec(any::<u8>(), 0..200), disk in any::<u32>()) {
        for req in [
            Request::Put { shard, data: data.clone() },
            Request::Get { shard },
            Request::Delete { shard },
            Request::List,
            Request::RemoveDisk { disk },
            Request::ReturnDisk { disk },
            Request::Migrate { shard, to_disk: disk },
        ] {
            prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    /// Responses round-trip through the wire format.
    #[test]
    fn response_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..200),
                          shards in proptest::collection::vec(any::<u128>(), 0..20),
                          msg in "[a-zA-Z0-9 ]{0,40}") {
        for resp in [
            Response::Ok,
            Response::Data(data.clone()),
            Response::NotFound,
            Response::Shards(shards.clone()),
            Response::Error(msg.clone()),
        ] {
            prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    /// Arbitrary bytes never panic the decoders (§7).
    #[test]
    fn decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// A malformed wire request gets an error response, not a dead server.
    #[test]
    fn dispatching_decoded_garbage_is_safe(bytes in proptest::collection::vec(any::<u8>(), 0..100)) {
        if let Ok(req) = Request::decode(&bytes) {
            let n = node();
            let _ = dispatch(&n, req);
        }
    }
}
