//! Engine-level tests: backpressure and its observability, batched
//! dispatch, same-disk FIFO, atomic fan-out admission, fault paths
//! through the request plane, and config builder validation.

use shardstore_core::rpc::{ErrorCode, Request, Response};
use shardstore_core::{
    serve, BackendKind, ConfigError, Engine, EngineConfig, Node, NodeConfig, StoreConfig,
};
use shardstore_obs::TraceEvent;
use shardstore_vdisk::Geometry;

fn node(disks: usize) -> Node {
    let config = NodeConfig::builder()
        .disks(disks)
        .geometry(Geometry::small())
        .store(StoreConfig::small())
        .build()
        .unwrap();
    Node::from_config(&config)
}

fn engine(disks: usize, queue_depth: usize, batch_window: usize) -> Engine {
    let config = EngineConfig::builder()
        .queue_depth(queue_depth)
        .batch_window(batch_window)
        .build()
        .unwrap();
    Engine::start(node(disks), config)
}

#[test]
fn requests_to_a_quarantined_extent_report_degraded() {
    // A permanent media fault surfaces to RPC clients as a typed
    // `Degraded` error — not a hang, not a panic, not NotFound.
    let n = node(2);
    n.put(2, b"doomed").unwrap();
    let store = n.store(n.route(2)).unwrap();
    store.pump().unwrap();
    let extent = store.index().get(2).unwrap().unwrap()[0].extent;
    store.scheduler().disk().inject_fail_always(extent);

    let engine = Engine::start(n.clone(), EngineConfig::default());
    let client = engine.client();
    let err = client.get(2).unwrap_err();
    assert_eq!(err.code, ErrorCode::Degraded, "got {err}");
    assert!(store.quarantined_extents().contains(&extent));
    // The executor survives the fault: traffic to the same disk and the
    // other disk still flows.
    client.put(4, b"same disk, healthy extent".to_vec()).unwrap();
    assert!(client.get(4).unwrap().is_some());
    client.put(1, b"other disk".to_vec()).unwrap();
    assert!(client.get(1).unwrap().is_some());
    engine.shutdown();
}

#[test]
fn engine_scans_page_through_the_fanout() {
    // A limited scan fans one piece per disk, merges, truncates, and
    // hands back a continuation; following continuations walks the whole
    // keyspace exactly once, in order, with exact values.
    let n = node(2);
    for k in 0..25u128 {
        n.put(k, format!("v-{k}").as_bytes()).unwrap();
    }
    let engine = Engine::start(n, EngineConfig::default());
    let client = engine.client();
    let mut seen: Vec<u128> = Vec::new();
    let mut continuation = None;
    let mut pages = 0usize;
    loop {
        let (entries, next) = client.scan(0, u128::MAX, 10, continuation).unwrap();
        assert!(entries.len() <= 10, "page overflows its limit");
        for (k, v) in &entries {
            assert!(*v == *format!("v-{k}").as_bytes(), "wrong value for key {k}");
        }
        seen.extend(entries.iter().map(|(k, _)| *k));
        pages += 1;
        match next {
            Some(c) => continuation = Some(c),
            None => break,
        }
    }
    assert_eq!(seen, (0..25u128).collect::<Vec<_>>(), "paged scan lost or duplicated keys");
    assert!(pages >= 3, "25 keys with limit 10 need at least 3 pages, got {pages}");
    // Observability: every disk counted its scan pieces and traced the
    // page sizes it contributed.
    for disk in 0..2 {
        let obs = engine.node().disk_obs(disk).unwrap();
        assert!(
            obs.registry().counter("rpc.scan").get() >= pages as u64,
            "disk {disk} missed scan counts"
        );
        assert!(
            obs.trace()
                .snapshot()
                .into_iter()
                .any(|r| matches!(r.event, TraceEvent::ScanPage { .. })),
            "disk {disk} traced no scan pages"
        );
    }
    // An empty range answers one empty page with no continuation.
    let (entries, next) = client.scan(40, 30, 0, None).unwrap();
    assert!(entries.is_empty());
    assert!(next.is_none());
    engine.shutdown();
}

#[test]
fn scans_crossing_a_quarantined_extent_report_degraded() {
    // A scan whose range covers a key on a failed extent must surface
    // the typed `Degraded` error — it must never return a page that
    // silently skips the unreadable key.
    let n = node(2);
    n.put(2, b"doomed").unwrap();
    // The healthy key must live on the *other* disk — a same-disk key
    // would share the open data extent with the doomed one.
    let healthy = (3..100u128).find(|k| n.route(*k) != n.route(2)).unwrap();
    n.put(healthy, b"healthy").unwrap();
    let store = n.store(n.route(2)).unwrap();
    store.pump().unwrap();
    let extent = store.index().get(2).unwrap().unwrap()[0].extent;
    store.scheduler().disk().inject_fail_always(extent);
    store.drop_caches();

    let engine = Engine::start(n.clone(), EngineConfig::default());
    let client = engine.client();
    let err = client.scan(0, u128::MAX, 0, None).unwrap_err();
    assert_eq!(err.code, ErrorCode::Degraded, "got {err}");
    assert!(store.quarantined_extents().contains(&extent));
    // The quarantine is sticky: a retry still reports the fault rather
    // than dropping key 2 from the results.
    let err = client.scan(0, u128::MAX, 0, None).unwrap_err();
    assert_eq!(err.code, ErrorCode::Degraded, "retry got {err}");
    // A scan whose range avoids the quarantined key still succeeds.
    let (entries, next) = client.scan(3, u128::MAX, 0, None).unwrap();
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].0, healthy);
    assert!(entries[0].1 == b"healthy"[..]);
    assert!(next.is_none());
    engine.shutdown();
}

#[test]
fn admission_queue_overflow_is_typed_and_observable() {
    let engine = engine(1, 2, 2);
    let client = engine.client();
    engine.pause();
    // Two requests fill the bounded queue; the third is rejected at
    // admission without blocking.
    let a = client.call_nowait(Request::Put { shard: 0, data: b"a".to_vec() });
    let b = client.call_nowait(Request::Put { shard: 1, data: b"b".to_vec() });
    let rejected = client.call_nowait(Request::Get { shard: 0 });
    match rejected.poll().expect("rejection is synchronous") {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Overloaded),
        other => panic!("unexpected: {other:?}"),
    }
    // The rejection is observable: counter bumped, trace event recorded,
    // and the queue-depth gauge shows the saturated queue.
    let obs = engine.node().disk_obs(0).unwrap();
    assert_eq!(obs.registry().counter("rpc.overloaded").get(), 1);
    assert_eq!(obs.registry().gauge("rpc.queue_depth").get(), 2);
    let overloads: Vec<TraceEvent> = obs
        .trace()
        .snapshot()
        .into_iter()
        .map(|r| r.event)
        .filter(|e| matches!(e, TraceEvent::RpcOverloaded { .. }))
        .collect();
    assert_eq!(overloads, vec![TraceEvent::RpcOverloaded { disk: 0, depth: 2 }]);
    // The admitted requests were not disturbed by the rejection.
    engine.resume();
    assert_eq!(a.wait(), Response::Ok);
    assert_eq!(b.wait(), Response::Ok);
    engine.shutdown();
}

#[test]
fn introspect_answers_while_engine_saturated() {
    let engine = engine(1, 2, 2);
    let client = engine.client();
    engine.pause();
    // Fill the bounded admission queue so every further data op is
    // rejected with `Overloaded`.
    let a = client.call_nowait(Request::Put { shard: 0, data: b"a".to_vec() });
    let b = client.call_nowait(Request::Put { shard: 1, data: b"b".to_vec() });
    let rejected = client.call_nowait(Request::Get { shard: 0 });
    match rejected.poll().expect("rejection is synchronous") {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Overloaded),
        other => panic!("unexpected: {other:?}"),
    }
    // Introspection still answers — it is served inline at admission and
    // never touches the executor queues.
    let json = client.introspect().expect("introspect answers while saturated");
    let report = shardstore_obs::json::parse(&json).expect("introspect JSON parses");
    assert_eq!(report.render(), json, "health JSON is canonical");
    let obj = report.as_object().unwrap();
    assert_eq!(obj.get("version").and_then(shardstore_obs::json::Json::as_u64), Some(2));
    let disks = obj.get("disks").and_then(shardstore_obs::json::Json::as_array).unwrap();
    assert_eq!(disks.len(), 1);
    let disk0 = disks[0].as_object().unwrap();
    // The report sees the saturated queue through the gauge.
    assert_eq!(
        disk0.get("queue_depth").and_then(shardstore_obs::json::Json::as_i64),
        Some(2),
        "introspect reports the saturated admission queue"
    );
    assert_eq!(disk0.get("in_service"), Some(&shardstore_obs::json::Json::Bool(true)));
    // The admitted requests were not disturbed.
    engine.resume();
    assert_eq!(a.wait(), Response::Ok);
    assert_eq!(b.wait(), Response::Ok);
    engine.shutdown();
}

#[test]
fn co_routed_puts_batch_through_put_batch() {
    let engine = engine(1, 8, 4);
    let client = engine.client();
    engine.pause();
    let pending: Vec<_> = (0..4u128)
        .map(|s| client.call_nowait(Request::Put { shard: s, data: vec![s as u8; 16] }))
        .collect();
    engine.resume();
    for p in pending {
        assert_eq!(p.wait(), Response::Ok);
    }
    let obs = engine.node().disk_obs(0).unwrap();
    assert!(obs.registry().counter("rpc.batches").get() >= 1, "no batch formed");
    let batched: u32 = obs
        .trace()
        .snapshot()
        .into_iter()
        .filter_map(|r| match r.event {
            TraceEvent::RpcBatch { puts, .. } => Some(puts),
            _ => None,
        })
        .sum();
    assert!(batched >= 2, "batches cover fewer than 2 puts: {batched}");
    // Batched or not, every put landed.
    for s in 0..4u128 {
        assert_eq!(client.get(s).unwrap().unwrap(), vec![s as u8; 16]);
    }
    engine.shutdown();
}

#[test]
fn same_disk_requests_execute_in_admission_order() {
    let engine = engine(1, 8, 4);
    let client = engine.client();
    engine.pause();
    // put v1 / get / put v2 / get: the first get must see v1 — batched
    // dispatch only funnels the *leading* run of puts, so a read is
    // never reordered past a later write (or an earlier one).
    let p1 = client.call_nowait(Request::Put { shard: 7, data: b"v1".to_vec() });
    let g1 = client.call_nowait(Request::Get { shard: 7 });
    let p2 = client.call_nowait(Request::Put { shard: 7, data: b"v2".to_vec() });
    let g2 = client.call_nowait(Request::Get { shard: 7 });
    engine.resume();
    assert_eq!(p1.wait(), Response::Ok);
    assert_eq!(g1.wait(), Response::Data(b"v1".to_vec().into()));
    assert_eq!(p2.wait(), Response::Ok);
    assert_eq!(g2.wait(), Response::Data(b"v2".to_vec().into()));
    engine.shutdown();
}

#[test]
fn rejected_fanout_leaves_no_partial_pieces() {
    // 2 disks, queue depth 1. Saturate disk 1 only, then fan out a List:
    // admission must reject it atomically, leaving nothing on disk 0.
    let engine = engine(2, 1, 1);
    let client = engine.client();
    client.put(0, b"zero".to_vec()).unwrap();
    engine.pause();
    let blocker = client.call_nowait(Request::Put { shard: 1, data: b"one".to_vec() });
    let rejected = client.call_nowait(Request::List);
    match rejected.poll().expect("rejection is synchronous") {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Overloaded),
        other => panic!("unexpected: {other:?}"),
    }
    // Disk 0 admitted no orphan piece: its queue is empty.
    let obs0 = engine.node().disk_obs(0).unwrap();
    assert_eq!(obs0.registry().gauge("rpc.queue_depth").get(), 0);
    engine.resume();
    assert_eq!(blocker.wait(), Response::Ok);
    // With capacity available again the same fan-out succeeds.
    assert_eq!(client.list().unwrap(), vec![0, 1]);
    engine.shutdown();
}

#[test]
fn out_of_service_disk_answers_typed_errors_without_stalling() {
    let engine = serve(node(2));
    let client = engine.client();
    client.put(1, b"on disk 1".to_vec()).unwrap();
    client.remove_disk(1).unwrap();
    assert_eq!(client.get(1).unwrap_err().code, ErrorCode::OutOfService);
    assert_eq!(
        client.put(1, b"rejected".to_vec()).unwrap_err().code,
        ErrorCode::OutOfService
    );
    // The fanned-out listing still completes: the removed disk's piece
    // reports its (empty) slice rather than wedging the join.
    assert_eq!(client.list().unwrap(), Vec::<u128>::new());
    client.return_disk(1).unwrap();
    assert_eq!(client.get(1).unwrap().unwrap(), b"on disk 1".to_vec());
    engine.shutdown();
}

#[test]
fn shutdown_rejects_new_requests_and_drains_admitted_ones() {
    let engine = engine(1, 8, 4);
    let client = engine.client();
    engine.pause();
    let admitted = client.call_nowait(Request::Put { shard: 3, data: b"in".to_vec() });
    engine.shutdown();
    // The admitted request was drained, not dropped.
    assert_eq!(admitted.wait(), Response::Ok);
    assert_eq!(client.put(4, b"late".to_vec()).unwrap_err().code, ErrorCode::ServerStopped);
    assert_eq!(client.list().unwrap_err().code, ErrorCode::ServerStopped);
    // Shutdown is idempotent.
    engine.shutdown();
}

#[test]
fn engine_config_builder_validates() {
    assert!(matches!(
        EngineConfig::builder().queue_depth(0).build(),
        Err(ConfigError::Zero { field: "queue_depth" })
    ));
    assert!(matches!(
        EngineConfig::builder().batch_window(0).build(),
        Err(ConfigError::Zero { field: "batch_window" })
    ));
    assert!(matches!(
        EngineConfig::builder().queue_depth(4).batch_window(8).build(),
        Err(ConfigError::BatchWindowExceedsQueue { batch_window: 8, queue_depth: 4 })
    ));
    let ok = EngineConfig::builder().queue_depth(32).batch_window(8).build().unwrap();
    assert_eq!((ok.queue_depth, ok.batch_window), (32, 8));
}

#[test]
fn node_config_builder_validates() {
    assert!(matches!(
        NodeConfig::builder().disks(0).build(),
        Err(ConfigError::Zero { field: "disks" })
    ));
    // Engine config is re-validated at the node level.
    let bad_engine = EngineConfig { queue_depth: 2, batch_window: 4 };
    assert!(NodeConfig::builder().engine(bad_engine).build().is_err());
    let config = NodeConfig::builder().disks(3).build().unwrap();
    assert_eq!(config.disks, 3);
    assert_eq!(Node::from_config(&config).disk_count(), 3);
}

#[test]
fn store_config_builder_validates() {
    assert!(matches!(
        StoreConfig::builder().max_chunk_size(0).build(),
        Err(ConfigError::Zero { field: "max_chunk_size" })
    ));
    assert!(matches!(
        StoreConfig::builder().flush_threshold(0).build(),
        Err(ConfigError::Zero { field: "flush_threshold" })
    ));
    let config = StoreConfig::builder()
        .max_chunk_size(4096)
        .flush_threshold(8)
        .cache_capacity(16)
        .lsm_filters(false)
        .build()
        .unwrap();
    assert_eq!(config.max_chunk_size, 4096);
    assert_eq!(config.flush_threshold, 8);
    assert!(!config.lsm_filters);
}

#[test]
fn store_config_backend_round_trips_and_validates() {
    assert_eq!(StoreConfig::default().backend.tag(), "memory");
    assert!(matches!(
        StoreConfig::builder()
            .backend(BackendKind::File { dir: "".into(), preallocate: false })
            .build(),
        Err(ConfigError::EmptyBackendDir)
    ));
    let backend = BackendKind::File { dir: "/tmp/shardstore-volumes".into(), preallocate: true };
    let config = StoreConfig::small().to_builder().backend(backend.clone()).build().unwrap();
    assert_eq!(config.backend, backend);
    assert_eq!(config.backend.tag(), "file");
    // to_builder round-trips the backend along with every other knob.
    let rebuilt = config.clone().to_builder().build().unwrap();
    assert_eq!(rebuilt.backend, backend);
    assert_eq!(rebuilt.flush_threshold, config.flush_threshold);
}
