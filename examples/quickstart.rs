//! Quickstart: a single-disk ShardStore, the dependency-polling API, and
//! crash recovery in under a minute.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use shardstore::faults::FaultConfig;
use shardstore::vdisk::{CrashPlan, Geometry};
use shardstore::{Store, StoreConfig};

fn main() {
    // A fresh store over an in-memory disk: 256 KiB extents, 64 MiB total.
    let store = Store::format(Geometry::default(), StoreConfig::default(), FaultConfig::none());

    // Writes are asynchronous: `put` returns a Dependency you can poll,
    // exactly the paper's `append(..., dep) -> Dependency` contract.
    let dep = store.put(1, b"the first shard").unwrap();
    println!("put accepted; persistent yet? {}", dep.is_persistent());

    // Reads see the write immediately (read-your-writes).
    let data = store.get(1).unwrap().unwrap();
    println!("read back {} bytes before any IO was flushed", data.len());

    // Drive the IO scheduler: writes are issued in dependency order and
    // flushed; afterwards the dependency reports persistent.
    store.flush_index().unwrap();
    store.pump().unwrap();
    println!("after flush+pump: persistent = {}", dep.is_persistent());
    assert!(dep.is_persistent());

    // Store a few more shards, then simulate a power failure that loses
    // everything volatile. Persisted data must survive.
    for shard in 2..6u128 {
        store.put(shard, format!("shard number {shard}").as_bytes()).unwrap();
    }
    let unpersisted = store.put(99, b"racing the crash").unwrap();
    store.flush_index().unwrap();
    store.pump().unwrap();

    let before = store.list().unwrap();
    println!("shards before crash: {before:?}");

    let recovered = store.dirty_reboot(&CrashPlan::LoseAll).unwrap();
    let after = recovered.list().unwrap();
    println!("shards after crash + recovery: {after:?}");
    assert_eq!(before, after, "everything was persisted before the crash");
    let _ = unpersisted;

    // Delete a shard and reclaim its space.
    recovered.delete(3).unwrap();
    recovered.flush_index().unwrap();
    recovered.pump().unwrap();
    let reclaimed = recovered.reclaim(shardstore::chunk::Stream::Data).unwrap();
    println!("reclamation ran: {reclaimed}");
    assert_eq!(recovered.get(3).unwrap(), None);
    assert!(recovered.get(2).unwrap().is_some(), "live neighbours survive GC");

    println!("quickstart OK");
}
