//! Observability walkthrough: the metrics registry, the structured trace
//! log, and the trace-based oracles — all deterministic (logical sequence
//! numbers, never wall clock).
//!
//! ```sh
//! cargo run --example observability
//! ```

use shardstore::faults::FaultConfig;
use shardstore::obs::oracle;
use shardstore::vdisk::{ExtentId, Geometry};
use shardstore::{Store, StoreConfig};

fn main() {
    // Every store carries one `Obs` handle, created by its IO scheduler
    // and shared by every layer down to the virtual disk. No constructor
    // takes it: `store.obs()` is the single access point.
    let store = Store::format(Geometry::small(), StoreConfig::small(), FaultConfig::none());
    let obs = store.obs();

    // --- A little work to observe -------------------------------------
    let dep = store.put(1, b"hello observability").unwrap();
    store.put(2, &vec![0xA5u8; 300]).unwrap();
    store.get(1).unwrap().unwrap(); // a cache miss that populates the cache
    store.get(1).unwrap().unwrap(); // …and now a cache hit
    store.delete(2).unwrap();
    store.flush_index().unwrap();
    store.pump().unwrap();
    assert!(dep.is_persistent());

    // --- Metrics: counters, gauges, histograms ------------------------
    // Snapshots are plain BTreeMaps serialized to JSON; the round-trip is
    // lossless, which is what the bench sidecar relies on.
    let snap = obs.snapshot();
    println!("== metrics snapshot ==");
    for name in ["sched.writes_submitted", "sched.ios_issued", "cache.hits", "lsm.flushes"] {
        println!("  {name} = {}", snap.counter(name));
    }
    let json = snap.to_json();
    let back = shardstore::obs::MetricsSnapshot::from_json(&json).unwrap();
    assert_eq!(snap, back, "snapshot JSON round-trips");

    // --- The trace log -------------------------------------------------
    // Typed events with logical-clock sequence numbers. Two runs of the
    // same ops produce byte-identical renders (see the determinism test).
    println!("\n== trace (first 12 events) ==");
    for line in store.obs().trace().render().lines().take(12) {
        println!("  {line}");
    }

    // --- Trace oracles --------------------------------------------------
    // The causal invariants the state-based checkers cannot see, checked
    // from the event log alone.
    let records = oracle::certify(obs.trace()).expect("trace did not wrap");
    oracle::check_acked_durability(&records).unwrap();
    oracle::check_quarantine_isolation(&records).unwrap();
    oracle::check_cache_coherence(&records).unwrap();
    println!("\nall trace oracles hold on the clean run");

    // --- A fault leaves a fingerprint -----------------------------------
    // A transient failure below the retry budget is invisible to the API
    // (the put still persists) but not to the trace.
    let store = Store::format(Geometry::small(), StoreConfig::small(), FaultConfig::none());
    for e in 1..Geometry::small().extent_count {
        store.scheduler().disk().inject_fail_times(ExtentId(e), 1);
    }
    store.put(7, b"retried").unwrap();
    store.flush_index().unwrap();
    store.pump().unwrap();
    let records = oracle::certify(store.obs().trace()).unwrap();
    oracle::check_retry_budget(&records, shardstore::dependency::DEFAULT_RETRY_BUDGET).unwrap();
    println!(
        "\ntransient fault absorbed: {} scheduler retries recorded",
        store.obs().snapshot().counter("sched.retries")
    );

    // --- Per-op timelines ------------------------------------------------
    // What the harnesses attach to minimized counterexamples: the same
    // records grouped by operation.
    println!("\n== per-op timeline (tail) ==");
    print!("{}", oracle::render_timeline_tail(&records, 14));
}
