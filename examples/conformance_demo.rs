//! Live demo of the paper's methodology: seed a historical bug, let the
//! property-based checker find it, and watch the counterexample shrink
//! (§4, §4.3).
//!
//! ```sh
//! cargo run --release --example conformance_demo
//! ```

use shardstore::faults::{BugId, FaultConfig};
use shardstore::harness::conformance::{run_conformance, ConformanceConfig};
use shardstore::harness::detect::sample_sequences;
use shardstore::harness::gen::{kv_ops, GenConfig};
use shardstore::harness::minimize::{measure, minimize};

fn main() {
    // 1. The fixed system passes random conformance sequences.
    let fixed = ConformanceConfig::default();
    let mut checked = 0;
    for ops in sample_sequences(kv_ops(GenConfig::conformance()), 7, 500) {
        run_conformance(&ops, &fixed).expect("the fixed system must conform");
        checked += 1;
    }
    println!("fixed system: {checked} random sequences, no divergence");

    // 2. Seed Fig. 5's issue #1 (an off-by-one in reclamation for chunks
    //    whose frame size is a page multiple) and search again.
    let bug = BugId::B1ReclamationOffByOne;
    let seeded = ConformanceConfig::with_faults(FaultConfig::seed(bug));
    println!("\nseeding {bug}: {}", bug.description());
    let mut found = None;
    for (i, ops) in sample_sequences(kv_ops(GenConfig::conformance()), 7, 50_000).enumerate() {
        if let Err(divergence) = run_conformance(&ops, &seeded) {
            println!("sequence #{} diverged: {divergence}", i + 1);
            found = Some(ops);
            break;
        }
    }
    let ops = found.expect("the seeded bug should be found");

    // 3. Minimize the counterexample (§4.3): remove operations and shrink
    //    arguments while the failure persists.
    let page = seeded.geometry.page_size;
    let before = measure(&ops, page);
    let minimized = minimize(&ops, |candidate| run_conformance(candidate, &seeded).is_err());
    let after = measure(&minimized, page);
    println!(
        "\nminimization: {} ops / {} bytes written  →  {} ops / {} bytes written",
        before.ops, before.bytes_written, after.ops, after.bytes_written
    );
    println!("minimized repro:");
    for op in &minimized {
        println!("  {op:?}");
    }
    assert!(after.ops <= before.ops);

    println!("\nconformance_demo OK");
}
