//! Stateless model checking in action (§6): run the paper's Fig. 4
//! harness on the fixed system, then seed issue #14 and watch the
//! checker find the compaction/reclamation race and hand back a
//! replayable schedule.
//!
//! ```sh
//! cargo run --release --example model_checking
//! ```

use shardstore::conc::CheckOptions;
use shardstore::faults::{BugId, FaultConfig};
use shardstore::harness::concurrent::{fig4_index_harness, superblock_pool_harness};

fn main() {
    // 1. Fixed code: every explored interleaving of concurrent
    //    reclamation, compaction, and overwriting reads passes.
    let report = fig4_index_harness(FaultConfig::none(), CheckOptions::pct(1, 3, 500))
        .expect("fixed code must pass");
    println!("fig4 harness, fixed code: {} interleavings explored, all pass", report.iterations);

    // 2. Seed issue #14 (compaction publishes its chunk before the
    //    metadata references it). PCT finds the losing interleaving.
    let bug = BugId::B14CompactionReclaimRace;
    println!("\nseeding {bug}: {}", bug.description());
    let err = fig4_index_harness(FaultConfig::seed(bug), CheckOptions::pct(1, 3, 10_000))
        .expect_err("the race should be found");
    println!("found: {}", err.to_string().lines().next().unwrap_or(""));
    if let Some(schedule) = err.schedule() {
        println!("replayable schedule of {} decisions captured", schedule.0.len());
    }

    // 3. Deadlock detection (issue #12): a one-permit superblock buffer
    //    pool and a waiter that holds the wrong lock.
    let bug = BugId::B12SuperblockDeadlock;
    println!("\nseeding {bug}: {}", bug.description());
    let err = superblock_pool_harness(FaultConfig::seed(bug), CheckOptions::random(2, 10_000))
        .expect_err("the deadlock should be found");
    println!("found:");
    for line in err.to_string().lines().take(3) {
        println!("  {line}");
    }

    println!("\nmodel_checking OK");
}
