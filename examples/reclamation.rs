//! Chunk reclamation (GC) under a realistic churn workload: fill the
//! disk, delete and overwrite shards, reclaim extents, and account for
//! space — the Fig. 1 lifecycle.
//!
//! ```sh
//! cargo run --example reclamation
//! ```

use shardstore::chunk::Stream;
use shardstore::faults::FaultConfig;
use shardstore::superblock::Owner;
use shardstore::vdisk::{CrashPlan, Geometry};
use shardstore::{Store, StoreConfig};

fn used_bytes(store: &Store, owner: Owner) -> usize {
    let em = store.cache().chunk_store().extent_manager();
    em.extents_owned_by(owner).iter().map(|e| em.write_pointer(*e)).sum()
}

fn main() {
    // A 16-extent disk with 1 KiB extents: small enough that GC matters
    // within a few dozen operations.
    let store = Store::format(Geometry::small(), StoreConfig::small(), FaultConfig::none());

    // Churn: write shards, overwrite half of them, delete a quarter.
    let payload = |shard: u128, gen: u8| vec![(shard as u8) ^ gen; 70];
    let mut live = std::collections::BTreeMap::new();
    for shard in 0..8u128 {
        store.put(shard, &payload(shard, 0)).unwrap();
        live.insert(shard, payload(shard, 0));
    }
    for shard in (0..8u128).step_by(2) {
        store.put(shard, &payload(shard, 1)).unwrap();
        live.insert(shard, payload(shard, 1));
    }
    for shard in (0..8u128).step_by(4) {
        store.delete(shard).unwrap();
        live.remove(&shard);
    }
    store.flush_index().unwrap();
    store.pump().unwrap();

    println!("after churn:");
    println!("  data bytes appended: {}", used_bytes(&store, Owner::Data));
    println!("  live shards: {}", live.len());

    // Reclaim until no victim remains: unreferenced chunks are dropped,
    // live chunks are evacuated and their index pointers rewritten, and
    // each scanned extent's write pointer is reset (Fig. 1b).
    let mut passes = 0;
    while store.reclaim(Stream::Data).unwrap() {
        passes += 1;
        store.pump().unwrap();
        if passes > 32 {
            break;
        }
    }
    let stats = store.cache().chunk_store().stats();
    println!("\nafter {passes} reclamation pass(es):");
    println!("  chunks evacuated: {}, dropped: {}", stats.evacuated, stats.dropped);
    println!("  data bytes in use: {}", used_bytes(&store, Owner::Data));

    // Every live shard is intact, every deleted shard is gone.
    for (shard, expected) in &live {
        assert_eq!(store.get(*shard).unwrap().as_ref(), Some(expected), "shard {shard}");
    }
    for shard in (0..8u128).step_by(4) {
        assert_eq!(store.get(shard).unwrap(), None);
    }

    // GC is crash-consistent: the reset never persists before the
    // evacuations and index updates it depends on. Crash and re-verify.
    let recovered = store.dirty_reboot(&CrashPlan::LoseAll).unwrap();
    for (shard, expected) in &live {
        assert_eq!(
            recovered.get(*shard).unwrap().as_ref(),
            Some(expected),
            "shard {shard} after crash"
        );
    }
    println!("\nall {} live shards intact after reclamation + crash", live.len());

    // The LSM tree's own chunks are reclaimed the same way (via the
    // metadata reverse lookup).
    recovered.compact_index().unwrap();
    recovered.pump().unwrap();
    let lsm_before = used_bytes(&recovered, Owner::LsmData);
    let mut lsm_passes = 0;
    while recovered.reclaim(Stream::Lsm).unwrap() {
        lsm_passes += 1;
        recovered.pump().unwrap();
        if lsm_passes > 32 {
            break;
        }
    }
    println!(
        "LSM-stream reclamation: {} → {} bytes in {lsm_passes} pass(es)",
        lsm_before,
        used_bytes(&recovered, Owner::LsmData)
    );
    for (shard, expected) in &live {
        assert_eq!(recovered.get(*shard).unwrap().as_ref(), Some(expected));
    }

    println!("\nreclamation OK");
}
