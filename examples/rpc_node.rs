//! A multi-disk storage node behind the RPC interface (§2.1): request
//! routing by shard id, control-plane disk removal and return, and bulk
//! operations.
//!
//! ```sh
//! cargo run --example rpc_node
//! ```

use shardstore::core::rpc::{serve, Request, Response};
use shardstore::faults::FaultConfig;
use shardstore::vdisk::Geometry;
use shardstore::{Node, StoreConfig};

fn main() {
    // Four disks behind one RPC endpoint; shard ids steer to disks.
    let node = Node::new(4, Geometry::small(), StoreConfig::small(), FaultConfig::none());
    let (client, server) = serve(node.clone());

    // Request plane: puts and gets over the wire format.
    for shard in 0..12u128 {
        let resp = client.call(&Request::Put {
            shard,
            data: format!("object-{shard}").into_bytes(),
        });
        assert_eq!(resp, Response::Ok);
    }
    println!("stored 12 shards across {} disks", node.disk_count());
    match client.call(&Request::List) {
        Response::Shards(shards) => println!("listing: {shards:?}"),
        other => panic!("unexpected: {other:?}"),
    }

    // Control plane: take disk 1 out of service for repair. Its shards
    // are unavailable (their replicas on other storage nodes would serve
    // them in production)...
    assert_eq!(client.call(&Request::RemoveDisk { disk: 1 }), Response::Ok);
    let unavailable: Vec<u128> = (0..12u128).filter(|s| node.route(*s) == 1).collect();
    println!("disk 1 removed; shards {unavailable:?} unavailable");
    for shard in &unavailable {
        assert!(matches!(client.call(&Request::Get { shard: *shard }), Response::Error(_)));
    }

    // ...and returning the disk recovers every one of them (the property
    // issue #4 in Fig. 5 violated).
    assert_eq!(client.call(&Request::ReturnDisk { disk: 1 }), Response::Ok);
    for shard in &unavailable {
        match client.call(&Request::Get { shard: *shard }) {
            Response::Data(d) => assert_eq!(d, format!("object-{shard}").into_bytes()),
            other => panic!("shard {shard} lost across removal/return: {other:?}"),
        }
    }
    println!("disk 1 returned; all shards recovered");

    // Migration (repair/rebalance): move a shard to another disk.
    let victim = 5u128;
    let old_disk = node.route(victim);
    let new_disk = (old_disk + 1) % node.disk_count();
    assert_eq!(
        client.call(&Request::Migrate { shard: victim, to_disk: new_disk as u32 }),
        Response::Ok
    );
    assert_eq!(node.route(victim), new_disk);
    match client.call(&Request::Get { shard: victim }) {
        Response::Data(d) => assert_eq!(d, format!("object-{victim}").into_bytes()),
        other => panic!("shard {victim} lost across migration: {other:?}"),
    }
    println!("migrated shard {victim}: disk {old_disk} → {new_disk}, data intact");

    // Bulk control-plane operations keep the catalog consistent.
    node.bulk_remove(&(0..12u128).collect::<Vec<_>>()).unwrap();
    node.check_catalog_consistent().unwrap();
    assert_eq!(client.call(&Request::List), Response::Shards(vec![]));
    println!("bulk remove complete; catalog consistent");

    drop(client);
    server.join().unwrap();
    println!("\nrpc_node OK");
}
