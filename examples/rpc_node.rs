//! A multi-disk storage node behind the parallel request plane (§2.1):
//! per-disk executors routed by shard id, typed errors, control-plane
//! disk removal and return, migration, cross-disk bulk operations, and
//! the wire-level health-introspection plane.
//!
//! ```sh
//! cargo run --example rpc_node
//! ```

use shardstore::core::rpc::{ErrorCode, Request, Response};
use shardstore::core::{Engine, NodeConfig};
use shardstore::vdisk::Geometry;
use shardstore::{Node, StoreConfig};

fn main() {
    // Four disks behind one RPC endpoint; shard ids steer to per-disk
    // executors, so traffic to different disks runs concurrently.
    let config = NodeConfig::builder()
        .disks(4)
        .geometry(Geometry::small())
        .store(StoreConfig::small())
        .build()
        .expect("valid node config");
    let node = Node::from_config(&config);
    let engine = Engine::start(node.clone(), config.engine);
    let client = engine.client();

    // Request plane: typed puts and gets through the client API.
    for shard in 0..12u128 {
        client.put(shard, format!("object-{shard}").into_bytes()).unwrap();
    }
    println!("stored 12 shards across {} disks", node.disk_count());
    println!("listing: {:?}", client.list().unwrap());

    // The same requests also travel as versioned wire frames; a frame
    // with a future version byte gets a typed rejection, not garbage.
    let frame = Request::Get { shard: 3 }.encode();
    let resp = Response::decode(&client.call_wire(&frame)).unwrap();
    assert_eq!(resp, Response::Data(b"object-3".to_vec().into()));

    // Range scans page through the key space with a keyset continuation;
    // each page fans out one slice per disk and merges in key order.
    let mut continuation = None;
    let mut pages = 0;
    loop {
        let (entries, next) = client.scan(0, u128::MAX, 5, continuation).unwrap();
        pages += 1;
        for (key, value) in &entries {
            assert_eq!(*value, format!("object-{key}").into_bytes());
        }
        match next {
            Some(_) => continuation = next,
            None => break,
        }
    }
    println!("scanned the catalog in {pages} pages of ≤5 entries");
    let mut future = frame.clone();
    future[2] = 0xEE; // version byte
    match Response::decode(&client.call_wire(&future)).unwrap() {
        Response::Error(e) => assert_eq!(e.code, ErrorCode::Unsupported),
        other => panic!("unexpected: {other:?}"),
    }
    println!("wire round-trip OK; future version rejected as Unsupported");

    // Control plane: take disk 1 out of service for repair. Its shards
    // are unavailable — reported with a typed code (their replicas on
    // other storage nodes would serve them in production)...
    client.remove_disk(1).unwrap();
    let unavailable: Vec<u128> = (0..12u128).filter(|s| node.route(*s) == 1).collect();
    println!("disk 1 removed; shards {unavailable:?} unavailable");
    for shard in &unavailable {
        let err = client.get(*shard).unwrap_err();
        assert_eq!(err.code, ErrorCode::OutOfService);
    }

    // The introspection plane answers health probes inline — it never
    // enters the executor queues, so it works even when the data plane
    // is saturated. The report is versioned JSON, one entry per disk;
    // disk 1 shows out of service while it's removed.
    let report = shardstore::obs::json::parse(&client.introspect().unwrap()).unwrap();
    let top = report.as_object().unwrap();
    assert_eq!(top.get("version").and_then(|v| v.as_u64()), Some(1));
    let disks = top.get("disks").and_then(|d| d.as_array()).unwrap();
    for entry in disks {
        let disk = entry.as_object().unwrap();
        let id = disk.get("disk").and_then(|v| v.as_u64()).unwrap();
        let in_service = disk.get("in_service") == Some(&shardstore::obs::json::Json::Bool(true));
        println!("introspect: disk {id} in_service={in_service}");
        assert_eq!(in_service, id != 1);
    }

    // ...and returning the disk recovers every one of them (the property
    // issue #4 in Fig. 5 violated).
    client.return_disk(1).unwrap();
    for shard in &unavailable {
        let data = client.get(*shard).unwrap();
        assert_eq!(data.unwrap(), format!("object-{shard}").into_bytes());
    }
    println!("disk 1 returned; all shards recovered");

    // Migration (repair/rebalance): move a shard to another disk.
    let victim = 5u128;
    let old_disk = node.route(victim);
    let new_disk = (old_disk + 1) % node.disk_count();
    client.migrate(victim, new_disk as u32).unwrap();
    assert_eq!(node.route(victim), new_disk);
    assert_eq!(client.get(victim).unwrap().unwrap(), format!("object-{victim}").into_bytes());
    println!("migrated shard {victim}: disk {old_disk} → {new_disk}, data intact");

    // Bulk control-plane operations fan out one piece per disk and keep
    // the per-disk catalogs consistent.
    client.bulk_remove((0..12u128).collect()).unwrap();
    node.check_catalog_consistent().unwrap();
    assert_eq!(client.list().unwrap(), Vec::<u128>::new());
    println!("bulk remove complete; catalog consistent");

    engine.shutdown();
    assert_eq!(client.put(1, b"late".to_vec()).unwrap_err().code, ErrorCode::ServerStopped);
    println!("\nrpc_node OK");
}
