//! Read-path accelerators, observed live: table fences and bloom filters
//! skipping tables, the decoded-table cache absorbing repeat lookups, the
//! sharded chunk cache's aggregated stats, and reads surviving GC
//! relocation of the tables under them.
//!
//! Run with: `cargo run --example read_path_demo`

use shardstore::chunk::Stream;
use shardstore::faults::{coverage, FaultConfig};
use shardstore::vdisk::Geometry;
use shardstore::{Store, StoreConfig};

fn main() {
    let store = Store::format(Geometry::default(), StoreConfig::default(), FaultConfig::none());

    // Eight tables of eight keys each, all table-resident. Keys are
    // striped across tables (table t holds t, 8+t, 16+t, ...), so table
    // fences overlap and the bloom filters have real work too.
    for t in 0..8u128 {
        for i in 0..8u128 {
            store.put(i * 8 + t, format!("value-{t}-{i}").as_bytes()).unwrap();
        }
        store.flush_index().unwrap();
    }
    store.pump().unwrap();
    store.drop_caches(); // start cold so every probe fires from zero

    coverage::enable();
    for k in 0..64u128 {
        assert!(store.get(k).unwrap().is_some());
    }
    println!("first cold sweep over 64 table-resident keys:");
    println!("  fence skips : {}", coverage::count("lsm.get.fence_skip"));
    println!("  bloom skips : {}", coverage::count("lsm.get.bloom_skip"));
    println!("  decoded miss: {}", coverage::count("lsm.decoded.miss"));
    println!("  decoded hit : {}", coverage::count("lsm.decoded.hit"));

    coverage::reset();
    for k in 0..64u128 {
        assert!(store.get(k).unwrap().is_some());
    }
    println!("second (warm) sweep:");
    println!("  decoded miss: {}", coverage::count("lsm.decoded.miss"));
    println!("  decoded hit : {}", coverage::count("lsm.decoded.hit"));

    let stats = store.cache().stats();
    println!(
        "sharded chunk cache: {} segments, {} hits / {} misses, {} bytes",
        store.cache().segment_count(),
        stats.hits,
        stats.misses,
        store.cache().cached_bytes()
    );

    // Relocate every LSM table by reclaiming its extents; reads keep
    // working through the rewritten locators.
    coverage::reset();
    let lsm_extents = store
        .cache()
        .chunk_store()
        .extent_manager()
        .extents_owned_by(shardstore::superblock::Owner::LsmData);
    let moved = lsm_extents.len();
    for ext in lsm_extents {
        let _ = store.reclaim_extent(ext, Stream::Lsm);
    }
    store.pump().unwrap();
    store.drop_caches();
    for k in 0..64u128 {
        let got = store.get(k).unwrap().unwrap();
        assert_eq!(got, format!("value-{}-{}", k % 8, k / 8).into_bytes());
    }
    println!(
        "reclaimed {moved} LSM extents ({} table relocations); all 64 keys intact after cold re-read",
        coverage::count("lsm.referencer.relocate_table")
    );
    coverage::disable();
    println!("read_path_demo OK");
}
