//! The Fig. 2 walk-through: three puts, their dependency graphs, the
//! on-disk layout, and what different crash points do to each put.
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use shardstore::faults::FaultConfig;
use shardstore::superblock::{Owner, SUPERBLOCK_EXTENT};
use shardstore::vdisk::{CrashPlan, Geometry};
use shardstore::{Store, StoreConfig};

fn print_layout(store: &Store, banner: &str) {
    println!("\n=== {banner} ===");
    let em = store.cache().chunk_store().extent_manager();
    for owner in [Owner::Superblock, Owner::Data, Owner::LsmData, Owner::Metadata] {
        let extents = if owner == Owner::Superblock {
            vec![SUPERBLOCK_EXTENT]
        } else {
            em.extents_owned_by(owner)
        };
        for e in extents {
            println!("  extent {:>3} [{owner:?}]: write pointer = {}", e.0, em.write_pointer(e));
        }
    }
    let sched = store.scheduler();
    println!(
        "  scheduler: {} pending write(s), {} issued-unflushed",
        sched.pending_count(),
        sched.issued_count()
    );
}

fn main() {
    let store = Store::format(Geometry::small(), StoreConfig::small(), FaultConfig::none());

    // The paper's Fig. 2: three puts arriving close together. Each put's
    // durability = shard data chunk + index entry + LSM metadata + the
    // soft write pointer updates, all ordered by the dependency graph.
    let dep1 = store.put(0x1, &[0xAA; 60]).unwrap();
    let dep2 = store.put(0x2, &[0xBB; 60]).unwrap();
    let dep3 = store.put(0x3, &[0xCC; 60]).unwrap();
    print_layout(&store, "after three puts (nothing flushed)");
    println!(
        "  put #1/#2/#3 persistent? {} {} {}",
        dep1.is_persistent(),
        dep2.is_persistent(),
        dep3.is_persistent()
    );

    // The index entries become durable at the next LSM flush (which also
    // writes the tree's metadata — the top of the Fig. 2 graph).
    store.flush_index().unwrap();

    // Drive the scheduler one IO at a time to show dependency ordering:
    // data chunks are issued before the index chunks that point at them,
    // and superblock updates only after the data they cover.
    let sched = store.scheduler();
    let mut round = 0;
    loop {
        let issued = sched.issue_ready(1).unwrap();
        if issued == 0 {
            sched.flush_issued().unwrap();
            if sched.issue_ready(1).unwrap() == 0 {
                break;
            }
        }
        round += 1;
        if round > 100 {
            break;
        }
    }
    sched.flush_issued().unwrap();
    store.pump().unwrap();
    print_layout(&store, "after pumping all IO");
    println!(
        "  put #1/#2/#3 persistent? {} {} {}",
        dep1.is_persistent(),
        dep2.is_persistent(),
        dep3.is_persistent()
    );
    assert!(dep1.is_persistent() && dep2.is_persistent() && dep3.is_persistent());
    let stats = sched.stats();
    println!(
        "  write coalescing: {} writes submitted, {} disk IOs issued ({} coalesced)",
        stats.writes_submitted, stats.ios_issued, stats.writes_coalesced
    );

    // A fourth put that never gets flushed, then a crash: the persistence
    // property says persisted data survives, and the unpersisted put may
    // be lost — but never corrupted.
    let dep4 = store.put(0x4, &[0xDD; 60]).unwrap();
    println!("\nput #4 persistent before crash? {}", dep4.is_persistent());
    let recovered = store.dirty_reboot(&CrashPlan::LoseAll).unwrap();
    print_layout(&recovered, "after dirty reboot (lost volatile state)");
    for shard in [0x1u128, 0x2, 0x3, 0x4] {
        println!("  shard {shard:#x}: {:?} bytes", recovered.get(shard).unwrap().map(|v| v.len()));
    }
    assert!(recovered.get(0x1).unwrap().is_some());
    assert!(recovered.get(0x2).unwrap().is_some());
    assert!(recovered.get(0x3).unwrap().is_some());
    assert_eq!(recovered.get(0x4).unwrap(), None, "unpersisted put lost, as allowed");

    println!("\ncrash_recovery OK");
}
