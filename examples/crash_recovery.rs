//! The Fig. 2 walk-through: three puts, their dependency graphs, the
//! on-disk layout, and what different crash points do to each put.
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use shardstore::faults::FaultConfig;
use shardstore::superblock::{Owner, SUPERBLOCK_EXTENT};
use shardstore::vdisk::{CrashPlan, Geometry};
use shardstore::{Store, StoreConfig};

fn print_layout(store: &Store, banner: &str) {
    println!("\n=== {banner} ===");
    let em = store.cache().chunk_store().extent_manager();
    for owner in [Owner::Superblock, Owner::Data, Owner::LsmData, Owner::Metadata] {
        let extents = if owner == Owner::Superblock {
            vec![SUPERBLOCK_EXTENT]
        } else {
            em.extents_owned_by(owner)
        };
        for e in extents {
            println!("  extent {:>3} [{owner:?}]: write pointer = {}", e.0, em.write_pointer(e));
        }
    }
    let sched = store.scheduler();
    println!(
        "  scheduler: {} pending write(s), {} issued-unflushed",
        sched.pending_count(),
        sched.issued_count()
    );
}

fn main() {
    let store = Store::format(Geometry::small(), StoreConfig::small(), FaultConfig::none());

    // The paper's Fig. 2: three puts arriving close together. Each put's
    // durability = shard data chunk + index entry + LSM metadata + the
    // soft write pointer updates, all ordered by the dependency graph.
    let dep1 = store.put(0x1, &[0xAA; 60]).unwrap();
    let dep2 = store.put(0x2, &[0xBB; 60]).unwrap();
    let dep3 = store.put(0x3, &[0xCC; 60]).unwrap();
    print_layout(&store, "after three puts (nothing flushed)");
    println!(
        "  put #1/#2/#3 persistent? {} {} {}",
        dep1.is_persistent(),
        dep2.is_persistent(),
        dep3.is_persistent()
    );

    // The index entries become durable at the next LSM flush (which also
    // writes the tree's metadata — the top of the Fig. 2 graph).
    store.flush_index().unwrap();

    // Drive the scheduler one IO at a time to show dependency ordering:
    // data chunks are issued before the index chunks that point at them,
    // and superblock updates only after the data they cover.
    let sched = store.scheduler();
    let mut round = 0;
    loop {
        let issued = sched.issue_ready(1).unwrap();
        if issued == 0 {
            sched.flush_issued().unwrap();
            if sched.issue_ready(1).unwrap() == 0 {
                break;
            }
        }
        round += 1;
        if round > 100 {
            break;
        }
    }
    sched.flush_issued().unwrap();
    store.pump().unwrap();
    print_layout(&store, "after pumping all IO");
    println!(
        "  put #1/#2/#3 persistent? {} {} {}",
        dep1.is_persistent(),
        dep2.is_persistent(),
        dep3.is_persistent()
    );
    assert!(dep1.is_persistent() && dep2.is_persistent() && dep3.is_persistent());
    println!(
        "  write coalescing: {} writes submitted, {} disk IOs issued ({} coalesced)",
        sched.counter("sched.writes_submitted"),
        sched.counter("sched.ios_issued"),
        sched.counter("sched.writes_coalesced")
    );

    // A fourth put that never gets flushed, then a crash: the persistence
    // property says persisted data survives, and the unpersisted put may
    // be lost — but never corrupted.
    let dep4 = store.put(0x4, &[0xDD; 60]).unwrap();
    println!("\nput #4 persistent before crash? {}", dep4.is_persistent());
    let recovered = store.dirty_reboot(&CrashPlan::LoseAll).unwrap();
    print_layout(&recovered, "after dirty reboot (lost volatile state)");
    for shard in [0x1u128, 0x2, 0x3, 0x4] {
        println!("  shard {shard:#x}: {:?} bytes", recovered.get(shard).unwrap().map(|v| v.len()));
    }
    assert!(recovered.get(0x1).unwrap().is_some());
    assert!(recovered.get(0x2).unwrap().is_some());
    assert!(recovered.get(0x3).unwrap().is_some());
    assert_eq!(recovered.get(0x4).unwrap(), None, "unpersisted put lost, as allowed");

    // --- Surviving the disk: a permanent extent fault -------------------
    // Past the Fig. 2 story, the same machinery handles dying hardware:
    // a permanently failing extent is *quarantined*, chunks still
    // resident in the buffer cache are evacuated to healthy extents,
    // stranded chunks report a distinguishable *degraded* error (never
    // wrong bytes), and new writes re-route.
    let store = recovered;
    // Warm the cache with shard 0x1 only; 0x2 stays disk-resident (the
    // verification loop above read everything, so start from cold).
    store.drop_caches();
    store.get(0x1).unwrap().unwrap();
    let ext = store.index().get(0x1).unwrap().unwrap()[0].extent;
    assert_eq!(store.index().get(0x2).unwrap().unwrap()[0].extent, ext);
    println!("\nkilling extent {} (holds shards 0x1 and 0x2, 0x1 cached)", ext.0);
    store.scheduler().disk().inject_fail_always(ext);

    // First post-fault read of the stranded shard discovers the fault.
    let err = store.get(0x2).unwrap_err();
    println!("  get(0x2): {err} (degraded? {})", err.is_degraded());
    assert!(err.is_degraded(), "stranded shard reports degraded, not NotFound");
    println!(
        "  quarantined extents: {:?}",
        store.quarantined_extents().iter().map(|e| e.0).collect::<Vec<_>>()
    );
    assert!(store.quarantined_extents().contains(&ext));

    // The cached shard was evacuated: same bytes, new home.
    assert_eq!(store.get(0x1).unwrap().unwrap(), [0xAA; 60]);
    let new_ext = store.index().get(0x1).unwrap().unwrap()[0].extent;
    println!("  shard 0x1 evacuated: extent {} -> extent {}", ext.0, new_ext.0);
    assert_ne!(new_ext, ext);

    // New writes re-route to healthy extents and still become durable.
    let dep5 = store.put(0x5, &[0xEE; 60]).unwrap();
    store.flush_index().unwrap();
    store.pump().unwrap();
    assert!(dep5.is_persistent(), "writes keep acking with an extent down");

    // The rescue survives a reboot. The hardware fault also survives it
    // (fail_always models a broken platter, not a glitch): recovery
    // re-discovers the dead extent and keeps serving around it.
    let recovered = store.dirty_reboot(&CrashPlan::LoseAll).unwrap();
    print_layout(&recovered, "after reboot with a quarantined extent");
    assert_eq!(recovered.get(0x1).unwrap().unwrap(), [0xAA; 60]);
    assert_eq!(recovered.get(0x5).unwrap().unwrap(), [0xEE; 60]);
    match recovered.get(0x2) {
        Err(e) if e.is_degraded() => {
            println!("  shard 0x2 still degraded after reboot: {e}")
        }
        other => panic!("stranded shard must stay degraded, got {other:?}"),
    }

    println!("\ncrash_recovery OK");
}
