//! Offline drop-in subset of `criterion`.
//!
//! The workspace builds without registry access, so the external
//! `criterion` dependency is replaced by this vendored shim covering the
//! surface the bench crate uses: `Criterion`, `benchmark_group`,
//! `throughput`/`sample_size`/`bench_function`/`finish`, `Bencher::iter`
//! and `iter_batched`, and the `criterion_group!`/`criterion_main!`
//! macros. Statistics are intentionally simple — per-sample means with an
//! adaptive iteration count — but the measurement loop is real, so
//! relative comparisons (the only thing this workspace's benches are used
//! for) are meaningful.
//!
//! Pass `--json <path>` (or set `CRITERION_JSON=<path>`) to a bench
//! binary to also write machine-readable results.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Units for reporting throughput alongside timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup between timed routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs; one setup per timed routine call.
    SmallInput,
    /// Large per-iteration inputs; identical here.
    LargeInput,
    /// One input per batch; identical here.
    PerIteration,
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// `group/function` identifier.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample's nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of samples taken.
    pub samples: usize,
    /// Declared throughput, if any.
    pub throughput: Option<Throughput>,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 15 }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { _criterion: self, name: name.into(), throughput: None, sample_size }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_bench(name.into(), None, sample_size, f);
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declares the work per iteration for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of samples for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measures one benchmark function.
    pub fn bench_function(&mut self, name: impl Into<String>, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = format!("{}/{}", self.name, name.into());
        run_bench(id, self.throughput, self.sample_size, f);
        self
    }

    /// Ends the group (reporting happens as benchmarks run).
    pub fn finish(&mut self) {}
}

/// Collects timed iterations for one benchmark.
pub struct Bencher {
    sample_size: usize,
    /// (total duration, iterations) per sample.
    samples: Vec<(Duration, u64)>,
}

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(8);
const MAX_BENCH_TIME: Duration = Duration::from_secs(5);

impl Bencher {
    /// Times `routine`, called in an adaptive-length loop.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warmup + calibration: how many iterations fill a sample?
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        let bench_start = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push((t.elapsed(), per_sample));
            if bench_start.elapsed() > MAX_BENCH_TIME {
                break;
            }
        }
    }

    /// Times `routine` over inputs built by `setup`; only `routine` is
    /// timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // Calibration run (timed separately, not recorded).
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let bench_start = Instant::now();
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..per_sample {
                let input = setup();
                let t = Instant::now();
                std::hint::black_box(routine(input));
                total += t.elapsed();
            }
            self.samples.push((total, per_sample));
            if bench_start.elapsed() > MAX_BENCH_TIME {
                break;
            }
        }
    }
}

fn run_bench(
    id: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher { sample_size, samples: Vec::new() };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        return;
    }
    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|(d, n)| d.as_nanos() as f64 / (*n).max(1) as f64)
        .collect();
    let mean_ns = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min_ns = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let result =
        BenchResult { id, mean_ns, min_ns, samples: per_iter.len(), throughput };
    report(&result);
    RESULTS.lock().unwrap_or_else(|e| e.into_inner()).push(result);
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn report(r: &BenchResult) {
    let rate = match r.throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.0} elem/s)", n as f64 * 1e9 / r.mean_ns)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.1} MiB/s)", n as f64 * 1e9 / r.mean_ns / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!(
        "{:<44} time: [mean {} | best {}]{rate}",
        r.id,
        format_ns(r.mean_ns),
        format_ns(r.min_ns)
    );
}

/// Writes collected results and any `--json` output. Called by
/// `criterion_main!` after all groups run.
#[doc(hidden)]
pub fn finalize() {
    let results = RESULTS.lock().unwrap_or_else(|e| e.into_inner());
    let json_path = std::env::var("CRITERION_JSON").ok().or_else(|| {
        let args: Vec<String> = std::env::args().collect();
        args.iter().position(|a| a == "--json").and_then(|i| args.get(i + 1).cloned())
    });
    let Some(path) = json_path else { return };
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let throughput = match r.throughput {
            Some(Throughput::Elements(n)) => format!("{{\"elements\": {n}}}"),
            Some(Throughput::Bytes(n)) => format!("{{\"bytes\": {n}}}"),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"throughput\": {}}}{}\n",
            r.id,
            r.mean_ns,
            r.min_ns,
            r.samples,
            throughput,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("failed to write {path}: {e}");
    } else {
        println!("wrote {path}");
    }
}

/// Defines a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running each group then finalizing reports.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(n: u64) -> u64 {
        let mut acc = 0u64;
        for i in 0..n {
            acc = acc.wrapping_add(std::hint::black_box(i));
        }
        acc
    }

    #[test]
    fn groups_measure_and_record() {
        let mut c = Criterion::default().sample_size(3);
        {
            let mut g = c.benchmark_group("unit");
            g.throughput(Throughput::Elements(100));
            g.bench_function("spin", |b| b.iter(|| spin(100)));
            g.bench_function("batched", |b| {
                b.iter_batched(|| 50u64, spin, BatchSize::SmallInput)
            });
            g.finish();
        }
        let results = RESULTS.lock().unwrap();
        assert!(results.iter().any(|r| r.id == "unit/spin" && r.mean_ns > 0.0));
        assert!(results.iter().any(|r| r.id == "unit/batched"));
    }
}
