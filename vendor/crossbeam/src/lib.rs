//! Offline drop-in subset of `crossbeam`, backed by `std::sync::mpsc`.
//!
//! The workspace builds without registry access, so the external
//! `crossbeam` dependency is replaced by this vendored shim providing the
//! `channel::{unbounded, Sender, Receiver}` subset the workspace uses.
//! Like crossbeam (and unlike raw `mpsc`), both endpoints are `Clone` and
//! `Sync`; the receiver multiplexes clones through a shared mutex.

/// Multi-producer multi-consumer unbounded channels.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::sync::{Arc, Mutex};

    /// Error returned when sending on a channel with no receivers left.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned when receiving on a channel with no senders left.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders have disconnected.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No value arrived within the timeout.
        Timeout,
        /// All senders have disconnected.
        Disconnected,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    /// The receiving half of an unbounded channel. Clones share one queue.
    pub struct Receiver<T> {
        inner: Arc<Mutex<mpsc::Receiver<T>>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self { inner: self.inner.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Self { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    impl<T> Sender<T> {
        /// Sends a value, failing only if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let rx = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv().map_err(|_| RecvError)
        }

        /// Returns a pending value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let rx = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        /// Blocks until a value arrives, all senders disconnect, or
        /// `timeout` elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let rx = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: Arc::new(Mutex::new(rx)) })
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(5).unwrap();
            assert_eq!(rx.recv(), Ok(5));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_timeout_times_out_and_disconnects() {
            let (tx, rx) = unbounded::<u8>();
            let short = std::time::Duration::from_millis(1);
            assert_eq!(rx.recv_timeout(short), Err(RecvTimeoutError::Timeout));
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(short), Ok(7));
            drop(tx);
            assert_eq!(rx.recv_timeout(short), Err(RecvTimeoutError::Disconnected));
        }

        #[test]
        fn cloned_endpoints_share_queue() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            tx2.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx2.recv(), Ok(2));
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || tx.send(99).unwrap());
            assert_eq!(rx.recv(), Ok(99));
            t.join().unwrap();
        }
    }
}
