//! Offline drop-in subset of `rand` 0.8.
//!
//! The workspace builds without registry access, so the external `rand`
//! dependency is replaced by this vendored shim. It provides the subset the
//! workspace uses — `rngs::StdRng`, `SeedableRng::{from_seed, seed_from_u64}`,
//! and `Rng::{gen, gen_range, gen_bool, fill_bytes}` — deterministically
//! backed by xoshiro256** (seeded via splitmix64). Streams differ from the
//! real `rand` crate, which is fine: every consumer in this workspace only
//! requires determinism for a fixed seed, not rand-compatible streams.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of `u64` randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunk = [0u8; 8];
        let mut have = 0usize;
        for b in dest.iter_mut() {
            if have == 0 {
                chunk = self.next_u64().to_le_bytes();
                have = 8;
            }
            *b = chunk[8 - have];
            have -= 1;
        }
    }
}

/// Types that can be sampled uniformly from an RNG (`rand`'s `Standard`
/// distribution, flattened into a single trait).
pub trait StandardSample {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardSample for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Ranges that `Rng::gen_range` accepts (`rand`'s `SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u128;
                self.start + (u128::sample(rng) % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                if span == 0 {
                    // Full u128 range: every draw is in range.
                    return u128::sample(rng) as $t;
                }
                start + (u128::sample(rng) % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (u128::sample(rng) % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (u128::sample(rng) % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience sampling methods, as in `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the `Standard` distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable RNG constructors, as in `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64` via splitmix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256**-backed standard RNG.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // Avoid the all-zero state, which xoshiro cannot escape.
            if s == [0, 0, 0, 0] {
                let mut sm = 0xDEAD_BEEF_CAFE_F00Du64;
                for word in s.iter_mut() {
                    *word = splitmix64(&mut sm);
                }
            }
            Self { s }
        }
    }

    /// Small-footprint RNG; same engine as [`StdRng`] here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u64 = rng.gen_range(u64::MAX / 2..u64::MAX);
            assert!(w >= u64::MAX / 2);
            let x: u8 = rng.gen_range(1u8..=255);
            assert!(x >= 1);
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.4)).count();
        assert!((3_000..5_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn u128_uses_two_words() {
        let mut rng = StdRng::seed_from_u64(1);
        let v: u128 = rng.gen();
        assert!(v > u64::MAX as u128 || v.leading_zeros() >= 64);
    }
}
