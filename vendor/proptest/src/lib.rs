//! Offline drop-in subset of `proptest`.
//!
//! The workspace builds without registry access, so the external `proptest`
//! dependency is replaced by this vendored shim. It implements the exact
//! surface the workspace uses — the `proptest!`, `prop_oneof!`,
//! `prop_assert!`, `prop_assert_eq!`, and `prop_assume!` macros; `any`,
//! `Just`, integer/float range strategies, a character-class string
//! strategy, tuples, `collection::vec`, `prop_map`, `boxed`, and
//! `Union::new_weighted`; plus `TestRunner`/`TestRng`/`Config` — with one
//! deliberate simplification: failing inputs are reported but **not
//! shrunk** (`simplify` always returns `false`). The harness crate carries
//! its own delta-debugging minimizer, so shrinking here is redundant.
//!
//! Runs are deterministic: `TestRunner::new` seeds from a fixed constant,
//! so a failure reproduces on re-run without a persistence file.

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Test execution: runner, RNG, and configuration.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// RNG algorithm selector (only ChaCha is named by callers; the
    /// backing engine here is xoshiro either way).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RngAlgorithm {
        /// The default algorithm.
        ChaCha,
    }

    /// Deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: StdRng,
    }

    impl TestRng {
        /// Builds a RNG from an explicit byte seed.
        pub fn from_seed(_algorithm: RngAlgorithm, seed: &[u8]) -> Self {
            let mut full = [0u8; 32];
            for (i, b) in seed.iter().take(32).enumerate() {
                full[i] = *b;
            }
            Self { inner: StdRng::from_seed(full) }
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }
    }

    /// Test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for a pass.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the input is a counterexample.
        Fail(String),
        /// The input did not satisfy a `prop_assume!`; draw another.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed-assertion error.
        pub fn fail(message: impl Into<String>) -> Self {
            Self::Fail(message.into())
        }

        /// A rejected-input marker.
        pub fn reject(message: impl Into<String>) -> Self {
            Self::Reject(message.into())
        }
    }

    /// Result alias used by generated test closures.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives strategies: draws values and counts cases.
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        config: Config,
        rng: TestRng,
    }

    const DEFAULT_SEED: &[u8; 32] = b"shardstore-proptest-shim-seed\0\0\0";

    impl TestRunner {
        /// A runner with the given config and the fixed default seed.
        pub fn new(config: Config) -> Self {
            Self { config, rng: TestRng::from_seed(RngAlgorithm::ChaCha, DEFAULT_SEED) }
        }

        /// A runner with default config and the fixed default seed.
        pub fn deterministic() -> Self {
            Self::new(Config::default())
        }

        /// A runner with an explicit RNG (for seed-parameterized search).
        pub fn new_with_rng(config: Config, rng: TestRng) -> Self {
            Self { config, rng }
        }

        /// The runner's RNG, for strategies to draw from.
        pub fn rng(&mut self) -> &mut TestRng {
            &mut self.rng
        }

        /// The runner's configuration.
        pub fn config(&self) -> &Config {
            &self.config
        }
    }

    /// Executes `config.cases` cases of `test` over `strategy`; returns a
    /// human-readable failure report on the first counterexample. Inputs
    /// rejected by `prop_assume!` don't count as cases (bounded retries).
    pub fn run_proptest<S: crate::strategy::Strategy>(
        runner: &mut TestRunner,
        strategy: S,
        test: impl Fn(S::Value) -> TestCaseResult,
    ) -> Result<(), String> {
        let cases = runner.config().cases;
        let mut rejects = 0u64;
        let max_rejects = (cases as u64).saturating_mul(8).max(1024);
        let mut passed = 0u32;
        while passed < cases {
            let value = strategy
                .new_tree(runner)
                .map_err(|reason| format!("strategy failed to generate a value: {reason}"))?
                .current();
            let rendered = format!("{value:?}");
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    if rejects > max_rejects {
                        return Err(format!(
                            "too many inputs rejected by prop_assume! ({rejects}); last: {why}"
                        ));
                    }
                }
                Err(TestCaseError::Fail(message)) => {
                    return Err(format!(
                        "proptest case failed after {passed} passing case(s): {message}\n\
                         counterexample input: {rendered}"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The `Strategy`/`ValueTree` abstraction and combinators.
pub mod strategy {
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::sync::Arc;

    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// Reason a strategy could not produce a value.
    pub type Reason = String;

    /// Result of instantiating one value tree.
    pub type NewTree<V> = Result<Box<dyn ValueTree<Value = V>>, Reason>;

    /// A generated value (no shrinking in this shim: `simplify` is always
    /// `false`, so `current` is stable).
    pub trait ValueTree {
        /// The value type produced.
        type Value;

        /// The current value.
        fn current(&self) -> Self::Value;

        /// Attempts to shrink; this shim never shrinks.
        fn simplify(&mut self) -> bool {
            false
        }

        /// Undoes a shrink step; this shim never shrinks.
        fn complicate(&mut self) -> bool {
            false
        }
    }

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value tree from the runner's RNG.
        fn new_tree(&self, runner: &mut TestRunner) -> NewTree<Self::Value>;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f: Arc::new(f) }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy { inner: Arc::new(self) }
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V> {
        inner: Arc<dyn Strategy<Value = V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            Self { inner: Arc::clone(&self.inner) }
        }
    }

    impl<V> Debug for BoxedStrategy<V> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("BoxedStrategy").finish_non_exhaustive()
        }
    }

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_tree(&self, runner: &mut TestRunner) -> NewTree<V> {
            self.inner.new_tree(runner)
        }
    }

    struct Sampled<V: Clone> {
        value: V,
    }

    impl<V: Clone> ValueTree for Sampled<V> {
        type Value = V;
        fn current(&self) -> V {
            self.value.clone()
        }
    }

    /// Strategy producing exactly one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug + 'static> Strategy for Just<T> {
        type Value = T;
        fn new_tree(&self, _runner: &mut TestRunner) -> NewTree<T> {
            Ok(Box::new(Sampled { value: self.0.clone() }))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn new_tree(&self, runner: &mut TestRunner) -> NewTree<$t> {
                    if self.start >= self.end {
                        return Err(format!("empty range {:?}", self));
                    }
                    let value = runner.rng().gen_range(self.clone());
                    Ok(Box::new(Sampled { value }))
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_tree(&self, runner: &mut TestRunner) -> NewTree<$t> {
                    if self.start() > self.end() {
                        return Err(format!("empty range {:?}", self));
                    }
                    let value = runner.rng().gen_range(self.clone());
                    Ok(Box::new(Sampled { value }))
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn new_tree(&self, runner: &mut TestRunner) -> NewTree<f64> {
            if self.start >= self.end {
                return Err(format!("empty range {:?}", self));
            }
            let value = runner.rng().gen_range(self.clone());
            Ok(Box::new(Sampled { value }))
        }
    }

    /// Character-class string strategy: `&'static str` patterns of the
    /// form `[class]{m,n}` (a subset of proptest's regex strategies
    /// covering what the workspace uses: classes with ranges, literals,
    /// and `{m,n}` / `{n}` / `?` / `*` / `+` quantifiers).
    impl Strategy for &'static str {
        type Value = String;
        fn new_tree(&self, runner: &mut TestRunner) -> NewTree<String> {
            let units = parse_pattern(self)?;
            let mut out = String::new();
            for unit in &units {
                let n = if unit.min == unit.max {
                    unit.min
                } else {
                    runner.rng().gen_range(unit.min..=unit.max)
                };
                for _ in 0..n {
                    let idx = runner.rng().gen_range(0..unit.alphabet.len());
                    out.push(unit.alphabet[idx]);
                }
            }
            Ok(Box::new(Sampled { value: out }))
        }
    }

    struct PatternUnit {
        alphabet: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pattern: &str) -> Result<Vec<PatternUnit>, Reason> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut units = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet = match chars[i] {
                '[' => {
                    let close = chars[i..]
                        .iter()
                        .position(|c| *c == ']')
                        .ok_or_else(|| format!("unclosed class in pattern {pattern:?}"))?
                        + i;
                    let class = &chars[i + 1..close];
                    i = close + 1;
                    expand_class(class, pattern)?
                }
                '\\' => {
                    let c = *chars
                        .get(i + 1)
                        .ok_or_else(|| format!("dangling escape in pattern {pattern:?}"))?;
                    i += 2;
                    vec![c]
                }
                c => {
                    i += 1;
                    vec![c]
                }
            };
            let (min, max) = parse_quantifier(&chars, &mut i, pattern)?;
            units.push(PatternUnit { alphabet, min, max });
        }
        Ok(units)
    }

    fn expand_class(class: &[char], pattern: &str) -> Result<Vec<char>, Reason> {
        let mut alphabet = Vec::new();
        let mut j = 0;
        while j < class.len() {
            if j + 2 < class.len() && class[j + 1] == '-' {
                let (lo, hi) = (class[j] as u32, class[j + 2] as u32);
                if lo > hi {
                    return Err(format!("inverted class range in pattern {pattern:?}"));
                }
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c).expect("class range stays in char space"));
                }
                j += 3;
            } else {
                alphabet.push(class[j]);
                j += 1;
            }
        }
        if alphabet.is_empty() {
            return Err(format!("empty class in pattern {pattern:?}"));
        }
        Ok(alphabet)
    }

    fn parse_quantifier(
        chars: &[char],
        i: &mut usize,
        pattern: &str,
    ) -> Result<(usize, usize), Reason> {
        match chars.get(*i) {
            Some('{') => {
                let close = chars[*i..]
                    .iter()
                    .position(|c| *c == '}')
                    .ok_or_else(|| format!("unclosed quantifier in pattern {pattern:?}"))?
                    + *i;
                let body: String = chars[*i + 1..close].iter().collect();
                *i = close + 1;
                let parse = |s: &str| {
                    s.trim()
                        .parse::<usize>()
                        .map_err(|_| format!("bad quantifier {body:?} in pattern {pattern:?}"))
                };
                match body.split_once(',') {
                    Some((lo, hi)) => Ok((parse(lo)?, parse(hi)?)),
                    None => {
                        let n = parse(&body)?;
                        Ok((n, n))
                    }
                }
            }
            Some('?') => {
                *i += 1;
                Ok((0, 1))
            }
            Some('*') => {
                *i += 1;
                Ok((0, 8))
            }
            Some('+') => {
                *i += 1;
                Ok((1, 8))
            }
            _ => Ok((1, 1)),
        }
    }

    /// Strategy mapping another strategy's output through a function.
    pub struct Map<S, F: ?Sized> {
        source: S,
        f: Arc<F>,
    }

    impl<S: Clone, F: ?Sized> Clone for Map<S, F> {
        fn clone(&self) -> Self {
            Self { source: self.source.clone(), f: Arc::clone(&self.f) }
        }
    }

    struct MapTree<I, F: ?Sized> {
        inner: Box<dyn ValueTree<Value = I>>,
        f: Arc<F>,
    }

    impl<I, O, F> ValueTree for MapTree<I, F>
    where
        F: Fn(I) -> O + ?Sized,
    {
        type Value = O;
        fn current(&self) -> O {
            (self.f)(self.inner.current())
        }
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        S::Value: 'static,
        O: Debug,
        F: Fn(S::Value) -> O + 'static,
    {
        type Value = O;
        fn new_tree(&self, runner: &mut TestRunner) -> NewTree<O> {
            let inner = self.source.new_tree(runner)?;
            Ok(Box::new(MapTree { inner, f: Arc::clone(&self.f) }))
        }
    }

    /// Weighted choice among strategies of a common value type.
    pub struct Union<S: Strategy> {
        options: Vec<(u32, S)>,
        total: u64,
    }

    impl<S: Strategy> Union<S> {
        /// Builds a union choosing each option proportionally to its
        /// weight. Panics if empty or all-zero-weight.
        pub fn new_weighted(options: Vec<(u32, S)>) -> Self {
            let total: u64 = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "Union::new_weighted needs a positive total weight");
            Self { options, total }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn new_tree(&self, runner: &mut TestRunner) -> NewTree<S::Value> {
            let mut roll = runner.rng().gen_range(0..self.total);
            for (weight, option) in &self.options {
                let weight = *weight as u64;
                if roll < weight {
                    return option.new_tree(runner);
                }
                roll -= weight;
            }
            unreachable!("weighted roll exceeded total weight");
        }
    }

    struct TupleTree<T> {
        children: T,
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+)
            where
                $($name::Value: 'static,)+
            {
                type Value = ($($name::Value,)+);
                fn new_tree(&self, runner: &mut TestRunner) -> NewTree<Self::Value> {
                    Ok(Box::new(TupleTree {
                        children: ($(self.$idx.new_tree(runner)?,)+),
                    }))
                }
            }

            impl<$($name),+> ValueTree for TupleTree<($(Box<dyn ValueTree<Value = $name>>,)+)> {
                type Value = ($($name,)+);
                fn current(&self) -> Self::Value {
                    ($(self.children.$idx.current(),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

    /// Marker for [`crate::arbitrary::any`] (kept here so `Strategy` is
    /// implemented next to its peers).
    #[derive(Debug)]
    pub struct Any<T> {
        pub(crate) marker: PhantomData<T>,
    }

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Self { marker: PhantomData }
        }
    }

    impl<T> Strategy for Any<T>
    where
        T: rand::StandardSample + Clone + Debug + 'static,
    {
        type Value = T;
        fn new_tree(&self, runner: &mut TestRunner) -> NewTree<T> {
            let value = runner.rng().gen::<T>();
            Ok(Box::new(Sampled { value }))
        }
    }
}

/// The `any::<T>()` entry point.
pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Any;

    /// A strategy producing uniformly distributed values of `T`.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy,
    {
        Any { marker: PhantomData }
    }
}

/// Collection strategies.
pub mod collection {
    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    use crate::strategy::{NewTree, Strategy, ValueTree};
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// Accepted size specifications for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self { min: r.start, max_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self { min: *r.start(), max_exclusive: r.end().saturating_add(1) }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max_exclusive: n + 1 }
        }
    }

    /// Strategy for vectors whose elements come from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    struct VecTree<V> {
        children: Vec<Box<dyn ValueTree<Value = V>>>,
    }

    impl<V> ValueTree for VecTree<V> {
        type Value = Vec<V>;
        fn current(&self) -> Vec<V> {
            self.children.iter().map(|c| c.current()).collect()
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug + 'static,
    {
        type Value = Vec<S::Value>;
        fn new_tree(&self, runner: &mut TestRunner) -> NewTree<Vec<S::Value>> {
            if self.size.min >= self.size.max_exclusive {
                return Err(format!(
                    "empty vec size range {}..{}",
                    self.size.min, self.size.max_exclusive
                ));
            }
            let n = runner.rng().gen_range(self.size.min..self.size.max_exclusive);
            let mut children = Vec::with_capacity(n);
            for _ in 0..n {
                children.push(self.element.new_tree(runner)?);
            }
            Ok(Box::new(VecTree { children }))
        }
    }
}

/// Defines property tests: each `fn name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running `Config::cases` random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strategy:expr ),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            let strategy = ( $( $strategy, )+ );
            let outcome = $crate::test_runner::run_proptest(
                &mut runner,
                strategy,
                |( $( $pat, )+ )| {
                    $body;
                    ::core::result::Result::Ok(())
                },
            );
            if let ::core::result::Result::Err(message) = outcome {
                panic!("{}", message);
            }
        }
        $crate::__proptest_fns! { config = ($config); $($rest)* }
    };
}

/// Weighted (`w => strategy`) or uniform choice among strategies.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $weight:expr => $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new_weighted(vec![
            $( ($weight, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
    ( $( $strategy:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new_weighted(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
}

/// Asserts inside a property body; failure reports the counterexample
/// input instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Discards inputs that don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::{Strategy, Union, ValueTree};
    use crate::test_runner::TestRunner;

    fn sample<T: std::fmt::Debug>(s: impl Strategy<Value = T>, n: usize) -> Vec<T> {
        let mut runner = TestRunner::deterministic();
        (0..n).map(|_| s.new_tree(&mut runner).unwrap().current()).collect()
    }

    #[test]
    fn ranges_stay_in_bounds() {
        for v in sample(3u8..17, 500) {
            assert!((3..17).contains(&v));
        }
        for v in sample(1u8..=255, 500) {
            assert!(v >= 1);
        }
        for v in sample(0.0f64..1.0, 500) {
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn oneof_weights_bias_choice() {
        #[derive(Debug, Clone, PartialEq)]
        enum Pick {
            Heavy,
            Light,
        }
        let s = prop_oneof![
            9 => Just(Pick::Heavy),
            1 => Just(Pick::Light),
        ];
        let picks = sample(s, 1000);
        let heavy = picks.iter().filter(|p| **p == Pick::Heavy).count();
        assert!(heavy > 700, "heavy={heavy}");
        assert!(heavy < 1000, "light never chosen");
    }

    #[test]
    fn union_new_weighted_delegates() {
        let s = Union::new_weighted(vec![(1u32, Just(4usize).boxed()), (1, Just(9).boxed())]);
        let vals = sample(s, 200);
        assert!(vals.contains(&4) && vals.contains(&9));
    }

    #[test]
    fn vec_and_tuple_and_map_compose() {
        let s = crate::collection::vec((any::<u8>(), 0u8..4).prop_map(|(a, b)| a as u32 + b as u32), 1..9);
        for v in sample(s, 100) {
            assert!((1..9).contains(&v.len()));
        }
    }

    #[test]
    fn string_pattern_strategy() {
        let vals = sample("[a-zA-Z0-9 ]{0,40}", 200);
        assert!(vals.iter().any(|s| !s.is_empty()));
        for s in vals {
            assert!(s.len() <= 40);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == ' '));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro itself: bindings, assertions, and assumptions.
        #[test]
        fn macro_roundtrip(a in any::<u64>(), b in 1usize..10, v in crate::collection::vec(any::<u8>(), 0..5)) {
            prop_assume!(b > 0);
            prop_assert!(b < 10);
            prop_assert_eq!(a, a);
            prop_assert_ne!(b, 10);
            prop_assert!(v.len() < 5, "len was {}", v.len());
        }
    }

    #[test]
    fn failing_property_reports_counterexample() {
        let mut runner = TestRunner::deterministic();
        let err = crate::test_runner::run_proptest(&mut runner, (0u8..10,), |(v,)| {
            crate::prop_assert!(v < 5);
            Ok(())
        })
        .unwrap_err();
        assert!(err.contains("counterexample input"), "{err}");
    }
}
