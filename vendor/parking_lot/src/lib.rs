//! Offline drop-in subset of `parking_lot`, backed by `std::sync`.
//!
//! This workspace builds without registry access, so the external
//! `parking_lot` dependency is replaced by this vendored shim exposing the
//! same API shape for the subset the workspace uses: `Mutex`, `Condvar`
//! (with `wait(&mut guard)`), and `RwLock`, all with `const` constructors
//! and no lock poisoning (a poisoned std lock is recovered transparently,
//! matching parking_lot's panic-transparent semantics).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock with `parking_lot`'s API shape.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can temporarily take the std guard out
    // while keeping the caller's `&mut MutexGuard` alive.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(g) }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

impl<'a, T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable with `parking_lot`'s API shape: `wait` takes the
/// guard by mutable reference and re-acquires the lock before returning.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self { inner: std::sync::Condvar::new() }
    }

    /// Atomically releases the guard's lock and waits for a notification,
    /// re-acquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Waits while the predicate holds.
    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut pred: impl FnMut(&mut T) -> bool,
    ) {
        while pred(&mut **guard) {
            self.wait(guard);
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader-writer lock with `parking_lot`'s API shape.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Attempts to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockReadGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockWriteGuard { inner: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrows the inner value (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<'a, T: ?Sized> Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<'a, T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<'a, T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'a, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_by_ref() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let mut g = pair.0.lock();
        while !*g {
            pair.1.wait(&mut g);
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(3);
        assert_eq!(*l.read() + *l.read(), 6);
        *l.write() = 5;
        assert_eq!(*l.read(), 5);
        assert!(l.try_write().is_some());
    }
}
