#!/usr/bin/env bash
# Bench-baseline trajectory tooling.
#
#   scripts/bench_trajectory.sh             # aggregate every BENCH_*.json
#                                           # into BENCH_trajectory.json
#   scripts/bench_trajectory.sh check [sidecar ...]
#                                           # fail on a >2x counter
#                                           # regression vs the committed
#                                           # .metrics.json sidecar(s)
#
# Aggregation embeds each committed baseline verbatim, keyed by file
# name and stamped with the commit, so a sequence of trajectory files
# across commits is a benchmark history that needs no external tooling
# to assemble.
#
# The check mode is the CI regression gate: the kv_ops bench smoke
# regenerates its sidecar in the working tree; comparing the fresh
# counters against `git show HEAD:<sidecar>` flags any counter that
# grew beyond 2x its committed value (counters are deterministic for
# the fixed sidecar workload, so real drift means the change did more
# IO/misses/retries than the baseline — either a regression or a
# deliberate change that must refresh the sidecar in the same commit).
# Wall-clock histograms are never gated.

set -euo pipefail
cd "$(dirname "$0")/.."

check() {
    local failed=0
    for sidecar in "$@"; do
        if ! git show "HEAD:${sidecar}" > /dev/null 2>&1; then
            echo "bench_trajectory: no committed baseline for ${sidecar} — skipping" >&2
            continue
        fi
        if [ ! -f "${sidecar}" ]; then
            echo "bench_trajectory: ${sidecar} missing from working tree (run the bench smoke first)" >&2
            failed=1
            continue
        fi
        local committed
        committed=$(mktemp)
        git show "HEAD:${sidecar}" > "${committed}"
        if ! python3 - "${sidecar}" "${committed}" <<'PY'
import json, sys

with open(sys.argv[2]) as f:
    baseline = json.load(f).get("counters")
with open(sys.argv[1]) as f:
    fresh = json.load(f).get("counters")
if baseline is None or fresh is None:
    # Not a counter snapshot (e.g. the simulator's seed report) — the
    # 2x gate only applies to deterministic counter sidecars.
    print(f"bench_trajectory: {sys.argv[1]} has no counters — not gated")
    sys.exit(0)

ok = True
for name, base in sorted(baseline.items()):
    now = fresh.get(name, 0)
    if base > 0 and now > 2 * base:
        print(f"REGRESSION {sys.argv[1]}: {name} {base} -> {now} (>{2*base} = 2x baseline)")
        ok = False
sys.exit(0 if ok else 1)
PY
        then
            failed=1
        else
            echo "bench_trajectory: ${sidecar} gate passed"
        fi
        rm -f "${committed}"
    done
    return "${failed}"
}

aggregate() {
    local out="BENCH_trajectory.json"
    local commit
    commit=$(git rev-parse HEAD 2>/dev/null || echo unknown)
    python3 - "${out}" "${commit}" <<'PY'
import glob, json, sys

out, commit = sys.argv[1], sys.argv[2]
baselines = {}
for path in sorted(glob.glob("BENCH_*.json")):
    if path == out:
        continue
    with open(path) as f:
        baselines[path] = json.load(f)
with open(out, "w") as f:
    json.dump({"version": 1, "commit": commit, "baselines": baselines}, f, indent=1)
    f.write("\n")
print(f"{len(baselines)} baselines aggregated into {out} at {commit[:12]}")
PY
}

case "${1:-aggregate}" in
    check)
        shift
        if [ "$#" -eq 0 ]; then
            # Discover every sidecar dynamically so new benches join the
            # gate the moment their baseline is committed.
            shopt -s nullglob
            set -- BENCH_*.metrics.json
            shopt -u nullglob
            if [ "$#" -eq 0 ]; then
                echo "bench_trajectory: no BENCH_*.metrics.json sidecars found" >&2
                exit 1
            fi
        fi
        check "$@"
        ;;
    aggregate)
        aggregate
        ;;
    *)
        echo "usage: $0 [aggregate | check [sidecar ...]]" >&2
        exit 2
        ;;
esac
