#!/usr/bin/env bash
# Zero-copy guard for the certified hot read path.
#
# The hot read path (memtable probe in `shardstore-lsm`, value assembly
# in `Store::read_value`) is marked with HOT-PATH-BEGIN(tag)/HOT-PATH-END
# comment fences. Inside those regions no value-byte copy primitive may
# appear: `.to_vec(`, `.to_owned(`, `extend_from_slice(`, `Vec::from(`,
# or `.clone()`. A clone of *metadata* (locator lists, never payload
# bytes) may be allow-listed with a trailing `// hot-path: metadata
# clone` comment, which reviewers can grep for.
#
# Also asserts the fences still exist — a refactor that deletes the
# markers must not silently disable the guard.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
files=$(grep -rl "HOT-PATH-BEGIN" crates --include='*.rs' || true)
if [ -z "$files" ]; then
  echo "check_hot_path: no HOT-PATH-BEGIN markers found under crates/" >&2
  exit 1
fi

for tag in lsm-get store-read lsm-block-decode; do
  if ! grep -rq "HOT-PATH-BEGIN($tag)" crates --include='*.rs'; then
    echo "check_hot_path: certified region '$tag' is missing" >&2
    fail=1
  fi
done

for f in $files; do
  awk -v file="$f" '
    /HOT-PATH-BEGIN/ { inblock = 1; next }
    /HOT-PATH-END/   { inblock = 0; next }
    inblock && /hot-path: metadata clone/ { next }
    inblock && /(\.to_vec\(|\.to_owned\(|extend_from_slice\(|Vec::from\(|\.clone\(\))/ {
      printf "%s:%d: value copy on certified hot path: %s\n", file, NR, $0
      bad = 1
    }
    END { exit bad }
  ' "$f" || fail=1
done

if [ "$fail" -ne 0 ]; then
  echo "check_hot_path: FAILED — the certified read path must stay zero-copy" >&2
  exit 1
fi
echo "check_hot_path: ok — no value copies inside HOT-PATH regions"
