//! # ShardStore + lightweight formal methods
//!
//! A from-scratch reproduction of *"Using Lightweight Formal Methods to
//! Validate a Key-Value Storage Node in Amazon S3"* (Bornholt et al.,
//! SOSP 2021): both the storage node the paper describes and the
//! validation methodology it contributes.
//!
//! ## The system under validation
//!
//! A [`Store`] is one per-disk key-value store: an LSM-tree index
//! ([`lsm`]) whose shards live outside the tree as chunks ([`chunk`]),
//! placed on append-only extents whose soft write pointers persist in a
//! dual-slot superblock ([`superblock`]), with crash consistency provided
//! by run-time dependency graphs and a soft-updates IO scheduler
//! ([`dependency`]) over an in-memory user-space disk ([`vdisk`]). A
//! [`Node`] spans several such stores behind a parallel request plane
//! ([`core::engine`]): per-disk executors routed by shard id, bounded
//! admission with typed backpressure, batched put dispatch, and a
//! versioned wire protocol ([`core::rpc`]).
//!
//! ```
//! use shardstore::{Store, StoreConfig};
//! use shardstore::faults::FaultConfig;
//! use shardstore::vdisk::Geometry;
//!
//! let store = Store::format(Geometry::small(), StoreConfig::small(), FaultConfig::none());
//! let dep = store.put(42, b"hello world").unwrap();
//! assert!(!dep.is_persistent());       // queued, not yet on disk
//! store.clean_shutdown().unwrap();     // flush + pump everything
//! assert!(dep.is_persistent());        // …now it is (forward progress)
//! assert_eq!(store.get(42).unwrap().unwrap(), b"hello world");
//! ```
//!
//! A multi-disk node brings up through validated config builders and is
//! driven through typed [`RpcClient`] handles:
//!
//! ```
//! use shardstore::{Engine, Node, NodeConfig, StoreConfig};
//! use shardstore::core::rpc::ErrorCode;
//! use shardstore::vdisk::Geometry;
//!
//! let config = NodeConfig::builder()
//!     .disks(4)
//!     .geometry(Geometry::small())
//!     .store(StoreConfig::small())
//!     .build()
//!     .unwrap();
//! let engine = Engine::start(Node::from_config(&config), config.engine);
//! let client = engine.client();
//! client.put(7, b"routed to disk 3".to_vec()).unwrap();
//! assert_eq!(client.get(7).unwrap().unwrap(), b"routed to disk 3");
//! engine.shutdown();
//! assert_eq!(client.get(7).unwrap_err().code, ErrorCode::ServerStopped);
//! ```
//!
//! ## The validation stack
//!
//! - [`model`] — executable reference models (§3.2): ordered-map
//!   specifications that double as mocks, plus the crash-aware extension
//!   defining what a soft-updates crash may lose.
//! - [`harness`] — property-based conformance checking (§4), crash
//!   consistency with coarse and block-level crash states (§5), failure
//!   injection (§4.4), linearizability checking and hand-written
//!   concurrency harnesses (§6), test-case minimization (§4.3), and the
//!   Fig. 5 detection driver that re-discovers all sixteen historical
//!   issues from seeded faults.
//! - [`conc`] — a from-scratch stateless model checker (random walk, PCT,
//!   bounded DFS) with dual-mode sync primitives used by every component.
//! - [`faults`] — the [`faults::BugId`] registry of the sixteen issues
//!   and the coverage-probe mechanism (§4.2).

pub use shardstore_core::{
    serve, BackendKind, ConfigError, Engine, EngineConfig, Node, NodeConfig, RpcClient, Store,
    StoreConfig, StoreError,
};

/// The fault registry and coverage probes.
pub use shardstore_faults as faults;

/// The in-memory user-space disk.
pub use shardstore_vdisk as vdisk;

/// Dependency graphs and the soft-updates IO scheduler.
pub use shardstore_dependency as dependency;

/// Soft write pointers, extent ownership, the dual-slot superblock.
pub use shardstore_superblock as superblock;

/// Chunk storage, framing, and reclamation (GC).
pub use shardstore_chunk as chunk;

/// The block-position-keyed LRU buffer cache.
pub use shardstore_cache as cache;

/// The LSM-tree index.
pub use shardstore_lsm as lsm;

/// The storage node (stores, routing, RPC).
pub use shardstore_core as core;

/// Executable reference models (the specifications).
pub use shardstore_model as model;

/// The stateless model checker and dual-mode sync primitives.
pub use shardstore_conc as conc;

/// The property-based validation harnesses.
pub use shardstore_harness as harness;

/// The deterministic whole-system simulator substrate (logical time,
/// event queue, fault/delivery schedules).
pub use shardstore_sim as sim;

/// Deterministic metrics, structured event tracing, and trace oracles.
pub use shardstore_obs as obs;
